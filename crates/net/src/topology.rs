//! The time-varying network graph.
//!
//! §2.2's central observation: "the topology of the satellite network is
//! both known and public, allowing for pre-computation of static routes".
//! A [`Graph`] is one snapshot of that topology at an instant; the
//! [`SnapshotBuilder`](crate::isl::build_snapshot) derives it from orbital
//! state, and the routing modules consume it.
//!
//! Node indexing convention: satellites occupy indices `0..n_sats`,
//! ground stations `n_sats..n_sats+n_stations`. [`Graph::node_kind`]
//! recovers the kind. Public signatures use the typed identifiers from
//! [`openspace_sim::ids`] ([`NodeId`], [`SatId`], [`GsId`]), so a
//! satellite-array index can't silently be used as a graph-node index.
//!
//! Fault injection enters here: [`Graph::fail_node`] and
//! [`Graph::fail_link`] remove an entity's edges while recording exactly
//! what was removed, and the matching `restore_*` methods put them back
//! — applied and reverted in LIFO order, the graph is restored
//! bit-for-bit (a property the fault tests pin down).

pub use openspace_sim::ids::{GsId, NodeId, OperatorId, SatId};

/// Error addressing an edge that is not in the graph — on dynamic
/// topologies a contact can expire between snapshot and update, so this
/// is a recoverable condition, not a programming bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchEdge {
    /// Source node of the missing edge.
    pub from: NodeId,
    /// Destination node of the missing edge.
    pub to: NodeId,
}

impl std::fmt::Display for NoSuchEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no edge {} -> {}", self.from, self.to)
    }
}

impl std::error::Error for NoSuchEdge {}

/// Error from the topology-mutation API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A node index referred past the end of the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Graph node count.
        len: usize,
    },
    /// The addressed link does not exist (in either direction).
    NoSuchEdge(NoSuchEdge),
    /// Two graphs with different node rosters cannot be diffed or
    /// patched against each other.
    ShapeMismatch {
        /// `(satellites, stations)` of the graph the delta was built for.
        expected: (usize, usize),
        /// `(satellites, stations)` actually found.
        found: (usize, usize),
    },
    /// [`Graph::apply_delta`] found an adjacency row that is not
    /// bit-identical to the state the delta was extracted from — the
    /// delta belongs to a different point of the topology's evolution.
    DeltaMismatch {
        /// First node whose current row disagrees with the delta.
        node: NodeId,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            TopologyError::NoSuchEdge(e) => write!(f, "{e}"),
            TopologyError::ShapeMismatch { expected, found } => write!(
                f,
                "graph shape mismatch: delta built for {}+{} nodes, found {}+{}",
                expected.0, expected.1, found.0, found.1
            ),
            TopologyError::DeltaMismatch { node } => {
                write!(f, "delta does not match the graph at node {node}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<NoSuchEdge> for TopologyError {
    fn from(e: NoSuchEdge) -> Self {
        TopologyError::NoSuchEdge(e)
    }
}

/// Link technology of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTech {
    /// RF inter-satellite or ground link.
    Rf,
    /// Optical inter-satellite link.
    Optical,
}

/// What a node index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Satellite with the given satellite-array index.
    Satellite(SatId),
    /// Ground station with the given station-array index.
    GroundStation(GsId),
}

/// A directed edge of the snapshot graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node index.
    pub to: NodeId,
    /// One-way propagation latency (s).
    pub latency_s: f64,
    /// Achievable capacity (bit/s).
    pub capacity_bps: f64,
    /// Operator owning the *transmitting* node (the carrier that bills
    /// for this hop in the §3 cost model).
    pub operator: OperatorId,
    /// Link technology.
    pub technology: LinkTech,
    /// Current utilization in `[0, 1)`; 0 in a fresh snapshot, set by the
    /// traffic simulation for QoS-aware routing.
    pub load_fraction: f64,
}

/// Record of a node outage: everything [`Graph::fail_node`] removed,
/// in a form [`Graph::restore_node`] can replay exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutage {
    node: NodeId,
    /// The failed node's own out-edges, in their original order.
    out_edges: Vec<Edge>,
    /// In-edges from other nodes: `(owner, original position, edge)`,
    /// recorded in ascending owner/position order.
    in_edges: Vec<(NodeId, usize, Edge)>,
}

impl NodeOutage {
    /// The failed node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Directed links removed by the failure, as `(from, to)` pairs.
    pub fn removed_links(&self) -> Vec<(NodeId, NodeId)> {
        let out = self.out_edges.iter().map(|e| (self.node, e.to));
        let inn = self
            .in_edges
            .iter()
            .map(|(owner, _, _)| (*owner, self.node));
        out.chain(inn).collect()
    }

    /// Directed links this outage will restore, with their edge data.
    pub fn restored_links(&self) -> Vec<(NodeId, Edge)> {
        let out = self.out_edges.iter().map(|e| (self.node, *e));
        let inn = self.in_edges.iter().map(|(owner, _, e)| (*owner, *e));
        out.chain(inn).collect()
    }
}

/// Record of a link outage (both directions of one link), replayable by
/// [`Graph::restore_link`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkOutage {
    a: NodeId,
    b: NodeId,
    /// Removed directions: `(owner, original position, edge)`.
    removed: Vec<(NodeId, usize, Edge)>,
}

impl LinkOutage {
    /// The link's endpoints as given to [`Graph::fail_link`].
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Directed links removed, as `(from, to)` pairs.
    pub fn removed_links(&self) -> Vec<(NodeId, NodeId)> {
        self.removed
            .iter()
            .map(|(owner, _, e)| (*owner, e.to))
            .collect()
    }

    /// Directed links this outage will restore, with their edge data.
    pub fn restored_links(&self) -> Vec<(NodeId, Edge)> {
        self.removed
            .iter()
            .map(|(owner, _, e)| (*owner, *e))
            .collect()
    }
}

/// Bit-exact equality of two edges (`f64` fields compared by bit
/// pattern, so `-0.0 != 0.0` and a NaN equals itself — the right notion
/// for reproducibility arguments, unlike IEEE `==`).
fn edge_bits_eq(a: &Edge, b: &Edge) -> bool {
    a.to == b.to
        && a.latency_s.to_bits() == b.latency_s.to_bits()
        && a.capacity_bps.to_bits() == b.capacity_bps.to_bits()
        && a.operator == b.operator
        && a.technology == b.technology
        && a.load_fraction.to_bits() == b.load_fraction.to_bits()
}

fn row_bits_eq(a: &[Edge], b: &[Edge]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| edge_bits_eq(x, y))
}

/// One node's adjacency row before and after a delta. Rows are replaced
/// wholesale — adjacency order is part of the graph's bit pattern (the
/// snapshot builder's push order is not reconstructible from an edge
/// set), so row replacement is the only patch primitive that can honor
/// a bitwise-equality contract.
#[derive(Debug, Clone, PartialEq)]
struct RowChange {
    node: NodeId,
    before: Vec<Edge>,
    after: Vec<Edge>,
}

/// The difference between two topology snapshots of the *same* node
/// roster, replayable by [`Graph::apply_delta`].
///
/// §2.2's predictability argument — satellite topology is known and
/// public — means consecutive snapshots of a moving constellation
/// differ by a handful of contacts. A delta stores exactly the
/// adjacency rows that changed (with their before *and* after states,
/// so application is checked, composition is associative, and inversion
/// is free) and derives the edge-level story
/// ([`edges_added`](Self::edges_added) /
/// [`edges_removed`](Self::edges_removed) /
/// [`edges_changed`](Self::edges_changed)) on demand.
///
/// **Bitwise contract:** for snapshots `a`, `b` with equal rosters,
/// `a.apply_delta(&GraphDelta::between(&a, &b)?)` leaves `a`
/// bit-identical to `b` — every `f64` field compared by bit pattern,
/// pinned by the `timeline_equivalence` property suite.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDelta {
    n_sats: usize,
    n_stations: usize,
    /// Changed rows in ascending node order.
    rows: Vec<RowChange>,
}

impl GraphDelta {
    /// Extract the delta from `before` to `after`. Fails with
    /// [`TopologyError::ShapeMismatch`] when the node rosters differ —
    /// a timeline's roster is fixed over its horizon.
    pub fn between(before: &Graph, after: &Graph) -> Result<GraphDelta, TopologyError> {
        if (before.n_sats, before.n_stations) != (after.n_sats, after.n_stations) {
            return Err(TopologyError::ShapeMismatch {
                expected: (before.n_sats, before.n_stations),
                found: (after.n_sats, after.n_stations),
            });
        }
        let rows = (0..before.node_count())
            .filter(|&u| !row_bits_eq(&before.adj[u], &after.adj[u]))
            .map(|u| RowChange {
                node: NodeId(u),
                before: before.adj[u].clone(),
                after: after.adj[u].clone(),
            })
            .collect();
        Ok(GraphDelta {
            n_sats: before.n_sats,
            n_stations: before.n_stations,
            rows,
        })
    }

    /// An empty delta for the given roster (the identity patch).
    pub fn empty(n_sats: usize, n_stations: usize) -> GraphDelta {
        GraphDelta {
            n_sats,
            n_stations,
            rows: Vec::new(),
        }
    }

    /// `true` when applying this delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of adjacency rows this delta replaces.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The nodes whose adjacency rows change, ascending. This is the
    /// set a cached shortest-path tree must be screened against (only
    /// these nodes' out-edges differ between the two snapshots).
    pub fn changed_nodes(&self) -> Vec<NodeId> {
        self.rows.iter().map(|r| r.node).collect()
    }

    /// Directed edges present after but not before, with their edge
    /// data, as `(from, edge)` pairs in ascending `(from, to)` order.
    pub fn edges_added(&self) -> Vec<(NodeId, Edge)> {
        let mut out = Vec::new();
        for r in &self.rows {
            for e in &r.after {
                if !r.before.iter().any(|b| b.to == e.to) {
                    out.push((r.node, *e));
                }
            }
        }
        out.sort_by_key(|(u, e)| (*u, e.to));
        out
    }

    /// Directed edges present before but not after, as `(from, to)`
    /// pairs in ascending order.
    pub fn edges_removed(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for r in &self.rows {
            for e in &r.before {
                if !r.after.iter().any(|a| a.to == e.to) {
                    out.push((r.node, e.to));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Directed edges present on both sides whose data (latency,
    /// capacity, operator, …) changed bits, with their *new* edge data,
    /// in ascending `(from, to)` order.
    pub fn edges_changed(&self) -> Vec<(NodeId, Edge)> {
        let mut out = Vec::new();
        for r in &self.rows {
            for e in &r.after {
                if let Some(b) = r.before.iter().find(|b| b.to == e.to) {
                    if !edge_bits_eq(b, e) {
                        out.push((r.node, *e));
                    }
                }
            }
        }
        out.sort_by_key(|(u, e)| (*u, e.to));
        out
    }

    /// The inverse delta: applying `self` then `self.inverted()`
    /// restores the original graph bit-for-bit.
    pub fn inverted(&self) -> GraphDelta {
        GraphDelta {
            n_sats: self.n_sats,
            n_stations: self.n_stations,
            rows: self
                .rows
                .iter()
                .map(|r| RowChange {
                    node: r.node,
                    before: r.after.clone(),
                    after: r.before.clone(),
                })
                .collect(),
        }
    }

    /// Compose with a delta that applies *after* this one, producing a
    /// single delta with the combined effect. Fails with
    /// [`TopologyError::ShapeMismatch`] on roster disagreement and
    /// [`TopologyError::DeltaMismatch`] when `later`'s before-state
    /// contradicts this delta's after-state (the deltas are not
    /// consecutive).
    pub fn then(&self, later: &GraphDelta) -> Result<GraphDelta, TopologyError> {
        if (self.n_sats, self.n_stations) != (later.n_sats, later.n_stations) {
            return Err(TopologyError::ShapeMismatch {
                expected: (self.n_sats, self.n_stations),
                found: (later.n_sats, later.n_stations),
            });
        }
        let mut merged: std::collections::BTreeMap<NodeId, RowChange> =
            self.rows.iter().map(|r| (r.node, r.clone())).collect();
        for r in &later.rows {
            match merged.get_mut(&r.node) {
                Some(m) => {
                    if !row_bits_eq(&m.after, &r.before) {
                        return Err(TopologyError::DeltaMismatch { node: r.node });
                    }
                    m.after = r.after.clone();
                }
                None => {
                    merged.insert(r.node, r.clone());
                }
            }
        }
        Ok(GraphDelta {
            n_sats: self.n_sats,
            n_stations: self.n_stations,
            rows: merged
                .into_values()
                .filter(|r| !row_bits_eq(&r.before, &r.after))
                .collect(),
        })
    }
}

/// A snapshot of the network at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n_sats: usize,
    n_stations: usize,
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// An edgeless graph with the given node counts.
    pub fn new(n_sats: usize, n_stations: usize) -> Self {
        Self {
            n_sats,
            n_stations,
            adj: vec![Vec::new(); n_sats + n_stations],
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Satellite count.
    pub fn satellite_count(&self) -> usize {
        self.n_sats
    }

    /// Ground-station count.
    pub fn station_count(&self) -> usize {
        self.n_stations
    }

    /// What `node` refers to.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn node_kind(&self, node: impl Into<NodeId>) -> NodeKind {
        let node = node.into();
        assert!(node.0 < self.node_count(), "node {node} out of range");
        if node.0 < self.n_sats {
            NodeKind::Satellite(SatId(node.0))
        } else {
            NodeKind::GroundStation(GsId(node.0 - self.n_sats))
        }
    }

    /// Node index of satellite `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn sat_node(&self, i: impl Into<SatId>) -> NodeId {
        let i = i.into();
        assert!(i.0 < self.n_sats, "satellite {i} out of range");
        NodeId(i.0)
    }

    /// Node index of ground station `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn station_node(&self, i: impl Into<GsId>) -> NodeId {
        let i = i.into();
        assert!(i.0 < self.n_stations, "station {i} out of range");
        NodeId(self.n_sats + i.0)
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or non-positive
    /// capacity/latency.
    pub fn add_edge(&mut self, from: impl Into<NodeId>, edge: Edge) {
        let from = from.into();
        assert!(from.0 < self.node_count(), "from {from} out of range");
        assert!(edge.to.0 < self.node_count(), "to {} out of range", edge.to);
        assert!(from != edge.to, "self-loop at {from}");
        assert!(edge.latency_s > 0.0, "latency must be positive");
        assert!(edge.capacity_bps > 0.0, "capacity must be positive");
        assert!(
            (0.0..1.0).contains(&edge.load_fraction),
            "load fraction must be in [0,1)"
        );
        self.adj[from.0].push(edge);
    }

    /// Add the same link in both directions (symmetric ISLs/ground links),
    /// with per-direction operators taken from the transmitting side.
    #[allow(clippy::too_many_arguments)] // a link is genuinely 7 facts
    pub fn add_bidirectional(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        latency_s: f64,
        capacity_bps: f64,
        operator_a: impl Into<OperatorId>,
        operator_b: impl Into<OperatorId>,
        technology: LinkTech,
    ) {
        let (a, b) = (a.into(), b.into());
        self.add_edge(
            a,
            Edge {
                to: b,
                latency_s,
                capacity_bps,
                operator: operator_a.into(),
                technology,
                load_fraction: 0.0,
            },
        );
        self.add_edge(
            b,
            Edge {
                to: a,
                latency_s,
                capacity_bps,
                operator: operator_b.into(),
                technology,
                load_fraction: 0.0,
            },
        );
    }

    /// Out-edges of `node`.
    pub fn edges(&self, node: impl Into<NodeId>) -> &[Edge] {
        &self.adj[node.into().0]
    }

    /// Mutable out-edges (the traffic simulation updates loads in place).
    pub fn edges_mut(&mut self, node: impl Into<NodeId>) -> &mut [Edge] {
        &mut self.adj[node.into().0]
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Patch this graph in place with a delta extracted by
    /// [`GraphDelta::between`]. Application is *checked*: every row the
    /// delta replaces must currently be bit-identical to the delta's
    /// recorded before-state, otherwise the graph is left untouched and
    /// [`TopologyError::DeltaMismatch`] names the first disagreeing
    /// node. On success the graph is bit-identical to the snapshot the
    /// delta was extracted *to*.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<(), TopologyError> {
        if (self.n_sats, self.n_stations) != (delta.n_sats, delta.n_stations) {
            return Err(TopologyError::ShapeMismatch {
                expected: (delta.n_sats, delta.n_stations),
                found: (self.n_sats, self.n_stations),
            });
        }
        // Validate everything before mutating anything, so a failed
        // application never leaves a half-patched graph.
        for r in &delta.rows {
            if !row_bits_eq(&self.adj[r.node.0], &r.before) {
                return Err(TopologyError::DeltaMismatch { node: r.node });
            }
        }
        for r in &delta.rows {
            self.adj[r.node.0].clone_from(&r.after);
        }
        Ok(())
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: impl Into<NodeId>) -> usize {
        self.adj[node.into().0].len()
    }

    /// Find the edge `from → to`, if present.
    pub fn find_edge(&self, from: impl Into<NodeId>, to: impl Into<NodeId>) -> Option<&Edge> {
        let to = to.into();
        self.adj[from.into().0].iter().find(|e| e.to == to)
    }

    /// Set the utilization of the edge `from → to`. Returns
    /// [`NoSuchEdge`] when the edge is absent (e.g. the contact expired
    /// since the caller last looked at the topology).
    ///
    /// # Panics
    /// Panics if the load is out of range (a caller bug, unlike a
    /// missing edge, which is a property of the evolving topology).
    pub fn set_load(
        &mut self,
        from: impl Into<NodeId>,
        to: impl Into<NodeId>,
        load_fraction: f64,
    ) -> Result<(), NoSuchEdge> {
        assert!(
            (0.0..1.0).contains(&load_fraction),
            "load fraction must be in [0,1)"
        );
        let (from, to) = (from.into(), to.into());
        let e = self.adj[from.0]
            .iter_mut()
            .find(|e| e.to == to)
            .ok_or(NoSuchEdge { from, to })?;
        e.load_fraction = load_fraction;
        Ok(())
    }

    /// Nodes reachable from `start` (BFS over directed edges).
    pub fn reachable_from(&self, start: impl Into<NodeId>) -> Vec<bool> {
        let start = start.into();
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.0] = true;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u.0] {
                if !seen[e.to.0] {
                    seen[e.to.0] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Fail `node`: remove its out-edges and every in-edge pointing at
    /// it, returning a [`NodeOutage`] that [`Graph::restore_node`] can
    /// replay. A node with no incident edges fails successfully with an
    /// empty outage (it is simply unreachable either way).
    pub fn fail_node(&mut self, node: impl Into<NodeId>) -> Result<NodeOutage, TopologyError> {
        let node = node.into();
        if node.0 >= self.node_count() {
            return Err(TopologyError::NodeOutOfRange {
                node,
                len: self.node_count(),
            });
        }
        let out_edges = std::mem::take(&mut self.adj[node.0]);
        let mut in_edges = Vec::new();
        for owner in 0..self.adj.len() {
            // Collect positions first, then remove descending so earlier
            // positions stay valid — and restore (reverse order, insert
            // at recorded position) reconstructs the exact layout.
            let positions: Vec<usize> = self.adj[owner]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == node)
                .map(|(i, _)| i)
                .collect();
            for &pos in positions.iter().rev() {
                let edge = self.adj[owner].remove(pos);
                in_edges.push((NodeId(owner), pos, edge));
            }
        }
        Ok(NodeOutage {
            node,
            out_edges,
            in_edges,
        })
    }

    /// Undo a [`Graph::fail_node`]. Outages must be reverted in reverse
    /// order of application (LIFO) for exact restoration.
    pub fn restore_node(&mut self, outage: NodeOutage) {
        for (owner, pos, edge) in outage.in_edges.into_iter().rev() {
            let list = &mut self.adj[owner.0];
            let at = pos.min(list.len());
            list.insert(at, edge);
        }
        self.adj[outage.node.0] = outage.out_edges;
    }

    /// Fail the link between `a` and `b`: remove both directions (where
    /// present), returning a [`LinkOutage`] for [`Graph::restore_link`].
    /// Errs with [`TopologyError::NoSuchEdge`] when neither direction
    /// exists — e.g. the link's endpoint already failed.
    pub fn fail_link(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
    ) -> Result<LinkOutage, TopologyError> {
        let (a, b) = (a.into(), b.into());
        for node in [a, b] {
            if node.0 >= self.node_count() {
                return Err(TopologyError::NodeOutOfRange {
                    node,
                    len: self.node_count(),
                });
            }
        }
        let mut removed = Vec::new();
        for (from, to) in [(a, b), (b, a)] {
            if let Some(pos) = self.adj[from.0].iter().position(|e| e.to == to) {
                let edge = self.adj[from.0].remove(pos);
                removed.push((from, pos, edge));
            }
        }
        if removed.is_empty() {
            return Err(NoSuchEdge { from: a, to: b }.into());
        }
        Ok(LinkOutage { a, b, removed })
    }

    /// Undo a [`Graph::fail_link`]. Same LIFO discipline as
    /// [`Graph::restore_node`].
    pub fn restore_link(&mut self, outage: LinkOutage) {
        for (owner, pos, edge) in outage.removed.into_iter().rev() {
            let list = &mut self.adj[owner.0];
            let at = pos.min(list.len());
            list.insert(at, edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // sat0 - sat1 - gs0
        let mut g = Graph::new(2, 1);
        g.add_bidirectional(0usize, 1usize, 0.005, 1e6, 1u32, 2u32, LinkTech::Rf);
        g.add_bidirectional(1usize, 2usize, 0.003, 1e7, 2u32, 9u32, LinkTech::Rf);
        g
    }

    #[test]
    fn indexing_convention() {
        let g = line_graph();
        assert_eq!(g.node_kind(0usize), NodeKind::Satellite(SatId(0)));
        assert_eq!(g.node_kind(2usize), NodeKind::GroundStation(GsId(0)));
        assert_eq!(g.station_node(0usize), NodeId(2));
        assert_eq!(g.sat_node(1usize), NodeId(1));
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let g = line_graph();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(1usize), 2);
        assert!(g.find_edge(0usize, 1usize).is_some());
        assert!(g.find_edge(1usize, 0usize).is_some());
        assert!(g.find_edge(0usize, 2usize).is_none());
    }

    #[test]
    fn per_direction_operators() {
        let g = line_graph();
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().operator, OperatorId(1));
        assert_eq!(g.find_edge(1usize, 0usize).unwrap().operator, OperatorId(2));
    }

    #[test]
    fn reachability() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0usize, 1usize, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        let r = g.reachable_from(0usize);
        assert_eq!(r, vec![true, true, false]);
    }

    #[test]
    fn set_load_updates_edge() {
        let mut g = line_graph();
        g.set_load(0usize, 1usize, 0.75).unwrap();
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().load_fraction, 0.75);
        assert_eq!(g.find_edge(1usize, 0usize).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2, 0);
        g.add_edge(
            0usize,
            Edge {
                to: NodeId(0),
                latency_s: 1.0,
                capacity_bps: 1.0,
                operator: OperatorId(0),
                technology: LinkTech::Rf,
                load_fraction: 0.0,
            },
        );
    }

    #[test]
    fn set_load_missing_edge_is_an_error_not_a_panic() {
        let mut g = line_graph();
        let err = g.set_load(0usize, 2usize, 0.5).unwrap_err();
        assert_eq!(
            err,
            NoSuchEdge {
                from: NodeId(0),
                to: NodeId(2)
            }
        );
        assert_eq!(err.to_string(), "no edge 0 -> 2");
        // The graph is untouched by the failed update.
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_kind_panics() {
        line_graph().node_kind(99usize);
    }

    #[test]
    fn fail_node_removes_all_incident_edges() {
        let mut g = line_graph();
        let outage = g.fail_node(1usize).unwrap();
        assert_eq!(g.edge_count(), 0, "sat1 touched every link");
        assert_eq!(g.degree(1usize), 0);
        assert_eq!(outage.node(), NodeId(1));
        assert_eq!(outage.removed_links().len(), 4);
    }

    #[test]
    fn restore_node_recovers_exact_graph() {
        let original = line_graph();
        let mut g = original.clone();
        let outage = g.fail_node(1usize).unwrap();
        assert_ne!(g, original);
        g.restore_node(outage);
        assert_eq!(g, original);
    }

    #[test]
    fn fail_link_removes_both_directions() {
        let mut g = line_graph();
        let outage = g.fail_link(0usize, 1usize).unwrap();
        assert!(g.find_edge(0usize, 1usize).is_none());
        assert!(g.find_edge(1usize, 0usize).is_none());
        assert!(
            g.find_edge(1usize, 2usize).is_some(),
            "other link untouched"
        );
        g.restore_link(outage);
        assert_eq!(g, line_graph());
    }

    #[test]
    fn fail_missing_link_is_an_error() {
        let mut g = line_graph();
        assert_eq!(
            g.fail_link(0usize, 2usize),
            Err(TopologyError::NoSuchEdge(NoSuchEdge {
                from: NodeId(0),
                to: NodeId(2)
            }))
        );
        assert!(matches!(
            g.fail_node(99usize),
            Err(TopologyError::NodeOutOfRange { len: 3, .. })
        ));
        assert!(matches!(
            g.fail_link(0usize, 99usize),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn nested_outages_restore_in_lifo_order() {
        let original = line_graph();
        let mut g = original.clone();
        let link = g.fail_link(0usize, 1usize).unwrap();
        let node = g.fail_node(2usize).unwrap();
        g.restore_node(node);
        g.restore_link(link);
        assert_eq!(g, original);
    }

    #[test]
    fn isolated_node_fails_with_empty_outage() {
        let mut g = Graph::new(2, 0);
        let outage = g.fail_node(1usize).unwrap();
        assert!(outage.removed_links().is_empty());
        g.restore_node(outage);
        assert_eq!(g, Graph::new(2, 0));
    }

    /// `line_graph` with the 0-1 link dropped, a new 0-2 link added, and
    /// the 1-2 latency changed.
    fn shifted_graph() -> Graph {
        let mut g = Graph::new(2, 1);
        g.add_bidirectional(0usize, 2usize, 0.004, 1e6, 1u32, 9u32, LinkTech::Optical);
        g.add_bidirectional(1usize, 2usize, 0.002, 1e7, 2u32, 9u32, LinkTech::Rf);
        g
    }

    #[test]
    fn delta_roundtrip_is_bitwise() {
        let a = line_graph();
        let b = shifted_graph();
        let d = GraphDelta::between(&a, &b).unwrap();
        assert!(!d.is_empty());
        assert_eq!(d.row_count(), 3, "all three nodes' rows changed");
        let mut patched = a.clone();
        patched.apply_delta(&d).unwrap();
        assert_eq!(patched, b);
        patched.apply_delta(&d.inverted()).unwrap();
        assert_eq!(patched, a);
    }

    #[test]
    fn delta_edge_views() {
        let a = line_graph();
        let b = shifted_graph();
        let d = GraphDelta::between(&a, &b).unwrap();
        assert_eq!(
            d.edges_removed(),
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]
        );
        let added: Vec<_> = d.edges_added().iter().map(|(u, e)| (*u, e.to)).collect();
        assert_eq!(added, vec![(NodeId(0), NodeId(2)), (NodeId(2), NodeId(0))]);
        let changed: Vec<_> = d.edges_changed().iter().map(|(u, e)| (*u, e.to)).collect();
        assert_eq!(
            changed,
            vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(1))]
        );
        assert_eq!(d.changed_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_delta_between_identical_graphs() {
        let a = line_graph();
        let d = GraphDelta::between(&a, &a.clone()).unwrap();
        assert!(d.is_empty());
        let mut g = a.clone();
        g.apply_delta(&d).unwrap();
        assert_eq!(g, a);
    }

    #[test]
    fn delta_detects_negative_zero_and_nan_are_distinct_bits() {
        let a = line_graph();
        let mut b = a.clone();
        b.edges_mut(0usize)[0].load_fraction = -0.0;
        let d = GraphDelta::between(&a, &b).unwrap();
        assert_eq!(d.row_count(), 1, "-0.0 differs from 0.0 bitwise");
    }

    #[test]
    fn apply_delta_rejects_wrong_base() {
        let a = line_graph();
        let b = shifted_graph();
        let d = GraphDelta::between(&a, &b).unwrap();
        let mut wrong = a.clone();
        wrong.set_load(0usize, 1usize, 0.5).unwrap();
        let before = wrong.clone();
        let err = wrong.apply_delta(&d).unwrap_err();
        assert_eq!(err, TopologyError::DeltaMismatch { node: NodeId(0) });
        assert_eq!(wrong, before, "failed application leaves graph untouched");
        assert_eq!(err.to_string(), "delta does not match the graph at node 0");
    }

    #[test]
    fn delta_rejects_shape_mismatch() {
        let a = line_graph();
        let small = Graph::new(1, 1);
        let err = GraphDelta::between(&a, &small).unwrap_err();
        assert_eq!(
            err,
            TopologyError::ShapeMismatch {
                expected: (2, 1),
                found: (1, 1)
            }
        );
        let d = GraphDelta::empty(1, 1);
        assert!(matches!(
            a.clone().apply_delta(&d),
            Err(TopologyError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn delta_composition_matches_sequential_application() {
        let a = line_graph();
        let b = shifted_graph();
        let mut c = b.clone();
        c.set_load(1usize, 2usize, 0.25).unwrap();
        let ab = GraphDelta::between(&a, &b).unwrap();
        let bc = GraphDelta::between(&b, &c).unwrap();
        let ac = ab.then(&bc).unwrap();
        let mut g = a.clone();
        g.apply_delta(&ac).unwrap();
        assert_eq!(g, c);
        // Composing with a non-consecutive delta is rejected.
        assert!(matches!(
            bc.then(&bc),
            Err(TopologyError::DeltaMismatch { .. })
        ));
        // Composition that cancels out collapses to the empty delta.
        assert!(ab.then(&ab.inverted()).unwrap().is_empty());
    }
}
