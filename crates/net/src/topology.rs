//! The time-varying network graph.
//!
//! §2.2's central observation: "the topology of the satellite network is
//! both known and public, allowing for pre-computation of static routes".
//! A [`Graph`] is one snapshot of that topology at an instant; the
//! [`SnapshotBuilder`](crate::isl::build_snapshot) derives it from orbital
//! state, and the routing modules consume it.
//!
//! Node indexing convention: satellites occupy indices `0..n_sats`,
//! ground stations `n_sats..n_sats+n_stations`. [`Graph::node_kind`]
//! recovers the kind. Public signatures use the typed identifiers from
//! [`openspace_sim::ids`] ([`NodeId`], [`SatId`], [`GsId`]), so a
//! satellite-array index can't silently be used as a graph-node index.
//!
//! Fault injection enters here: [`Graph::fail_node`] and
//! [`Graph::fail_link`] remove an entity's edges while recording exactly
//! what was removed, and the matching `restore_*` methods put them back
//! — applied and reverted in LIFO order, the graph is restored
//! bit-for-bit (a property the fault tests pin down).

pub use openspace_sim::ids::{GsId, NodeId, OperatorId, SatId};

/// Error addressing an edge that is not in the graph — on dynamic
/// topologies a contact can expire between snapshot and update, so this
/// is a recoverable condition, not a programming bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchEdge {
    /// Source node of the missing edge.
    pub from: NodeId,
    /// Destination node of the missing edge.
    pub to: NodeId,
}

impl std::fmt::Display for NoSuchEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no edge {} -> {}", self.from, self.to)
    }
}

impl std::error::Error for NoSuchEdge {}

/// Error from the topology-mutation API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A node index referred past the end of the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Graph node count.
        len: usize,
    },
    /// The addressed link does not exist (in either direction).
    NoSuchEdge(NoSuchEdge),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            TopologyError::NoSuchEdge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<NoSuchEdge> for TopologyError {
    fn from(e: NoSuchEdge) -> Self {
        TopologyError::NoSuchEdge(e)
    }
}

/// Link technology of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTech {
    /// RF inter-satellite or ground link.
    Rf,
    /// Optical inter-satellite link.
    Optical,
}

/// What a node index refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Satellite with the given satellite-array index.
    Satellite(SatId),
    /// Ground station with the given station-array index.
    GroundStation(GsId),
}

/// A directed edge of the snapshot graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node index.
    pub to: NodeId,
    /// One-way propagation latency (s).
    pub latency_s: f64,
    /// Achievable capacity (bit/s).
    pub capacity_bps: f64,
    /// Operator owning the *transmitting* node (the carrier that bills
    /// for this hop in the §3 cost model).
    pub operator: OperatorId,
    /// Link technology.
    pub technology: LinkTech,
    /// Current utilization in `[0, 1)`; 0 in a fresh snapshot, set by the
    /// traffic simulation for QoS-aware routing.
    pub load_fraction: f64,
}

/// Record of a node outage: everything [`Graph::fail_node`] removed,
/// in a form [`Graph::restore_node`] can replay exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutage {
    node: NodeId,
    /// The failed node's own out-edges, in their original order.
    out_edges: Vec<Edge>,
    /// In-edges from other nodes: `(owner, original position, edge)`,
    /// recorded in ascending owner/position order.
    in_edges: Vec<(NodeId, usize, Edge)>,
}

impl NodeOutage {
    /// The failed node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Directed links removed by the failure, as `(from, to)` pairs.
    pub fn removed_links(&self) -> Vec<(NodeId, NodeId)> {
        let out = self.out_edges.iter().map(|e| (self.node, e.to));
        let inn = self
            .in_edges
            .iter()
            .map(|(owner, _, _)| (*owner, self.node));
        out.chain(inn).collect()
    }

    /// Directed links this outage will restore, with their edge data.
    pub fn restored_links(&self) -> Vec<(NodeId, Edge)> {
        let out = self.out_edges.iter().map(|e| (self.node, *e));
        let inn = self.in_edges.iter().map(|(owner, _, e)| (*owner, *e));
        out.chain(inn).collect()
    }
}

/// Record of a link outage (both directions of one link), replayable by
/// [`Graph::restore_link`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkOutage {
    a: NodeId,
    b: NodeId,
    /// Removed directions: `(owner, original position, edge)`.
    removed: Vec<(NodeId, usize, Edge)>,
}

impl LinkOutage {
    /// The link's endpoints as given to [`Graph::fail_link`].
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Directed links removed, as `(from, to)` pairs.
    pub fn removed_links(&self) -> Vec<(NodeId, NodeId)> {
        self.removed
            .iter()
            .map(|(owner, _, e)| (*owner, e.to))
            .collect()
    }

    /// Directed links this outage will restore, with their edge data.
    pub fn restored_links(&self) -> Vec<(NodeId, Edge)> {
        self.removed
            .iter()
            .map(|(owner, _, e)| (*owner, *e))
            .collect()
    }
}

/// A snapshot of the network at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n_sats: usize,
    n_stations: usize,
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// An edgeless graph with the given node counts.
    pub fn new(n_sats: usize, n_stations: usize) -> Self {
        Self {
            n_sats,
            n_stations,
            adj: vec![Vec::new(); n_sats + n_stations],
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Satellite count.
    pub fn satellite_count(&self) -> usize {
        self.n_sats
    }

    /// Ground-station count.
    pub fn station_count(&self) -> usize {
        self.n_stations
    }

    /// What `node` refers to.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn node_kind(&self, node: impl Into<NodeId>) -> NodeKind {
        let node = node.into();
        assert!(node.0 < self.node_count(), "node {node} out of range");
        if node.0 < self.n_sats {
            NodeKind::Satellite(SatId(node.0))
        } else {
            NodeKind::GroundStation(GsId(node.0 - self.n_sats))
        }
    }

    /// Node index of satellite `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn sat_node(&self, i: impl Into<SatId>) -> NodeId {
        let i = i.into();
        assert!(i.0 < self.n_sats, "satellite {i} out of range");
        NodeId(i.0)
    }

    /// Node index of ground station `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn station_node(&self, i: impl Into<GsId>) -> NodeId {
        let i = i.into();
        assert!(i.0 < self.n_stations, "station {i} out of range");
        NodeId(self.n_sats + i.0)
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or non-positive
    /// capacity/latency.
    pub fn add_edge(&mut self, from: impl Into<NodeId>, edge: Edge) {
        let from = from.into();
        assert!(from.0 < self.node_count(), "from {from} out of range");
        assert!(edge.to.0 < self.node_count(), "to {} out of range", edge.to);
        assert!(from != edge.to, "self-loop at {from}");
        assert!(edge.latency_s > 0.0, "latency must be positive");
        assert!(edge.capacity_bps > 0.0, "capacity must be positive");
        assert!(
            (0.0..1.0).contains(&edge.load_fraction),
            "load fraction must be in [0,1)"
        );
        self.adj[from.0].push(edge);
    }

    /// Add the same link in both directions (symmetric ISLs/ground links),
    /// with per-direction operators taken from the transmitting side.
    #[allow(clippy::too_many_arguments)] // a link is genuinely 7 facts
    pub fn add_bidirectional(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        latency_s: f64,
        capacity_bps: f64,
        operator_a: impl Into<OperatorId>,
        operator_b: impl Into<OperatorId>,
        technology: LinkTech,
    ) {
        let (a, b) = (a.into(), b.into());
        self.add_edge(
            a,
            Edge {
                to: b,
                latency_s,
                capacity_bps,
                operator: operator_a.into(),
                technology,
                load_fraction: 0.0,
            },
        );
        self.add_edge(
            b,
            Edge {
                to: a,
                latency_s,
                capacity_bps,
                operator: operator_b.into(),
                technology,
                load_fraction: 0.0,
            },
        );
    }

    /// Out-edges of `node`.
    pub fn edges(&self, node: impl Into<NodeId>) -> &[Edge] {
        &self.adj[node.into().0]
    }

    /// Mutable out-edges (the traffic simulation updates loads in place).
    pub fn edges_mut(&mut self, node: impl Into<NodeId>) -> &mut [Edge] {
        &mut self.adj[node.into().0]
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: impl Into<NodeId>) -> usize {
        self.adj[node.into().0].len()
    }

    /// Find the edge `from → to`, if present.
    pub fn find_edge(&self, from: impl Into<NodeId>, to: impl Into<NodeId>) -> Option<&Edge> {
        let to = to.into();
        self.adj[from.into().0].iter().find(|e| e.to == to)
    }

    /// Set the utilization of the edge `from → to`. Returns
    /// [`NoSuchEdge`] when the edge is absent (e.g. the contact expired
    /// since the caller last looked at the topology).
    ///
    /// # Panics
    /// Panics if the load is out of range (a caller bug, unlike a
    /// missing edge, which is a property of the evolving topology).
    pub fn set_load(
        &mut self,
        from: impl Into<NodeId>,
        to: impl Into<NodeId>,
        load_fraction: f64,
    ) -> Result<(), NoSuchEdge> {
        assert!(
            (0.0..1.0).contains(&load_fraction),
            "load fraction must be in [0,1)"
        );
        let (from, to) = (from.into(), to.into());
        let e = self.adj[from.0]
            .iter_mut()
            .find(|e| e.to == to)
            .ok_or(NoSuchEdge { from, to })?;
        e.load_fraction = load_fraction;
        Ok(())
    }

    /// Nodes reachable from `start` (BFS over directed edges).
    pub fn reachable_from(&self, start: impl Into<NodeId>) -> Vec<bool> {
        let start = start.into();
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start.0] = true;
        while let Some(u) = stack.pop() {
            for e in &self.adj[u.0] {
                if !seen[e.to.0] {
                    seen[e.to.0] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Fail `node`: remove its out-edges and every in-edge pointing at
    /// it, returning a [`NodeOutage`] that [`Graph::restore_node`] can
    /// replay. A node with no incident edges fails successfully with an
    /// empty outage (it is simply unreachable either way).
    pub fn fail_node(&mut self, node: impl Into<NodeId>) -> Result<NodeOutage, TopologyError> {
        let node = node.into();
        if node.0 >= self.node_count() {
            return Err(TopologyError::NodeOutOfRange {
                node,
                len: self.node_count(),
            });
        }
        let out_edges = std::mem::take(&mut self.adj[node.0]);
        let mut in_edges = Vec::new();
        for owner in 0..self.adj.len() {
            // Collect positions first, then remove descending so earlier
            // positions stay valid — and restore (reverse order, insert
            // at recorded position) reconstructs the exact layout.
            let positions: Vec<usize> = self.adj[owner]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to == node)
                .map(|(i, _)| i)
                .collect();
            for &pos in positions.iter().rev() {
                let edge = self.adj[owner].remove(pos);
                in_edges.push((NodeId(owner), pos, edge));
            }
        }
        Ok(NodeOutage {
            node,
            out_edges,
            in_edges,
        })
    }

    /// Undo a [`Graph::fail_node`]. Outages must be reverted in reverse
    /// order of application (LIFO) for exact restoration.
    pub fn restore_node(&mut self, outage: NodeOutage) {
        for (owner, pos, edge) in outage.in_edges.into_iter().rev() {
            let list = &mut self.adj[owner.0];
            let at = pos.min(list.len());
            list.insert(at, edge);
        }
        self.adj[outage.node.0] = outage.out_edges;
    }

    /// Fail the link between `a` and `b`: remove both directions (where
    /// present), returning a [`LinkOutage`] for [`Graph::restore_link`].
    /// Errs with [`TopologyError::NoSuchEdge`] when neither direction
    /// exists — e.g. the link's endpoint already failed.
    pub fn fail_link(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
    ) -> Result<LinkOutage, TopologyError> {
        let (a, b) = (a.into(), b.into());
        for node in [a, b] {
            if node.0 >= self.node_count() {
                return Err(TopologyError::NodeOutOfRange {
                    node,
                    len: self.node_count(),
                });
            }
        }
        let mut removed = Vec::new();
        for (from, to) in [(a, b), (b, a)] {
            if let Some(pos) = self.adj[from.0].iter().position(|e| e.to == to) {
                let edge = self.adj[from.0].remove(pos);
                removed.push((from, pos, edge));
            }
        }
        if removed.is_empty() {
            return Err(NoSuchEdge { from: a, to: b }.into());
        }
        Ok(LinkOutage { a, b, removed })
    }

    /// Undo a [`Graph::fail_link`]. Same LIFO discipline as
    /// [`Graph::restore_node`].
    pub fn restore_link(&mut self, outage: LinkOutage) {
        for (owner, pos, edge) in outage.removed.into_iter().rev() {
            let list = &mut self.adj[owner.0];
            let at = pos.min(list.len());
            list.insert(at, edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // sat0 - sat1 - gs0
        let mut g = Graph::new(2, 1);
        g.add_bidirectional(0usize, 1usize, 0.005, 1e6, 1u32, 2u32, LinkTech::Rf);
        g.add_bidirectional(1usize, 2usize, 0.003, 1e7, 2u32, 9u32, LinkTech::Rf);
        g
    }

    #[test]
    fn indexing_convention() {
        let g = line_graph();
        assert_eq!(g.node_kind(0usize), NodeKind::Satellite(SatId(0)));
        assert_eq!(g.node_kind(2usize), NodeKind::GroundStation(GsId(0)));
        assert_eq!(g.station_node(0usize), NodeId(2));
        assert_eq!(g.sat_node(1usize), NodeId(1));
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let g = line_graph();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(1usize), 2);
        assert!(g.find_edge(0usize, 1usize).is_some());
        assert!(g.find_edge(1usize, 0usize).is_some());
        assert!(g.find_edge(0usize, 2usize).is_none());
    }

    #[test]
    fn per_direction_operators() {
        let g = line_graph();
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().operator, OperatorId(1));
        assert_eq!(g.find_edge(1usize, 0usize).unwrap().operator, OperatorId(2));
    }

    #[test]
    fn reachability() {
        let mut g = Graph::new(3, 0);
        g.add_bidirectional(0usize, 1usize, 0.001, 1e6, 0u32, 0u32, LinkTech::Rf);
        let r = g.reachable_from(0usize);
        assert_eq!(r, vec![true, true, false]);
    }

    #[test]
    fn set_load_updates_edge() {
        let mut g = line_graph();
        g.set_load(0usize, 1usize, 0.75).unwrap();
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().load_fraction, 0.75);
        assert_eq!(g.find_edge(1usize, 0usize).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2, 0);
        g.add_edge(
            0usize,
            Edge {
                to: NodeId(0),
                latency_s: 1.0,
                capacity_bps: 1.0,
                operator: OperatorId(0),
                technology: LinkTech::Rf,
                load_fraction: 0.0,
            },
        );
    }

    #[test]
    fn set_load_missing_edge_is_an_error_not_a_panic() {
        let mut g = line_graph();
        let err = g.set_load(0usize, 2usize, 0.5).unwrap_err();
        assert_eq!(
            err,
            NoSuchEdge {
                from: NodeId(0),
                to: NodeId(2)
            }
        );
        assert_eq!(err.to_string(), "no edge 0 -> 2");
        // The graph is untouched by the failed update.
        assert_eq!(g.find_edge(0usize, 1usize).unwrap().load_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_kind_panics() {
        line_graph().node_kind(99usize);
    }

    #[test]
    fn fail_node_removes_all_incident_edges() {
        let mut g = line_graph();
        let outage = g.fail_node(1usize).unwrap();
        assert_eq!(g.edge_count(), 0, "sat1 touched every link");
        assert_eq!(g.degree(1usize), 0);
        assert_eq!(outage.node(), NodeId(1));
        assert_eq!(outage.removed_links().len(), 4);
    }

    #[test]
    fn restore_node_recovers_exact_graph() {
        let original = line_graph();
        let mut g = original.clone();
        let outage = g.fail_node(1usize).unwrap();
        assert_ne!(g, original);
        g.restore_node(outage);
        assert_eq!(g, original);
    }

    #[test]
    fn fail_link_removes_both_directions() {
        let mut g = line_graph();
        let outage = g.fail_link(0usize, 1usize).unwrap();
        assert!(g.find_edge(0usize, 1usize).is_none());
        assert!(g.find_edge(1usize, 0usize).is_none());
        assert!(
            g.find_edge(1usize, 2usize).is_some(),
            "other link untouched"
        );
        g.restore_link(outage);
        assert_eq!(g, line_graph());
    }

    #[test]
    fn fail_missing_link_is_an_error() {
        let mut g = line_graph();
        assert_eq!(
            g.fail_link(0usize, 2usize),
            Err(TopologyError::NoSuchEdge(NoSuchEdge {
                from: NodeId(0),
                to: NodeId(2)
            }))
        );
        assert!(matches!(
            g.fail_node(99usize),
            Err(TopologyError::NodeOutOfRange { len: 3, .. })
        ));
        assert!(matches!(
            g.fail_link(0usize, 99usize),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn nested_outages_restore_in_lifo_order() {
        let original = line_graph();
        let mut g = original.clone();
        let link = g.fail_link(0usize, 1usize).unwrap();
        let node = g.fail_node(2usize).unwrap();
        g.restore_node(node);
        g.restore_link(link);
        assert_eq!(g, original);
    }

    #[test]
    fn isolated_node_fails_with_empty_outage() {
        let mut g = Graph::new(2, 0);
        let outage = g.fail_node(1usize).unwrap();
        assert!(outage.removed_links().is_empty());
        g.restore_node(outage);
        assert_eq!(g, Graph::new(2, 0));
    }
}
