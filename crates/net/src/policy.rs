//! Regulation-aware routing.
//!
//! §5(3): "Different countries and regions have varying policies on
//! satellite communications, such as different spectrum allocation
//! policies, as well as independent licensing requirements. The ability
//! to use satellites located in some regions as relays for user traffic
//! can also be impeded by diverse user data privacy regulations … there
//! is the question of how to maintain a user's data privacy requirements
//! when their traffic is routed to a groundstation outside their region."
//!
//! Model: ground stations carry a jurisdiction; operators hold downlink
//! licenses per jurisdiction; users carry a privacy policy constraining
//! which jurisdictions may terminate their traffic and which carriers
//! may transit it. [`policy_route`] finds the best compliant route — or
//! proves none exists, which is itself the §5(3) finding.

use crate::routing::dijkstra::{shortest_path, Path};
use crate::topology::{Graph, NodeKind};

/// A legal jurisdiction (country/region code, opaque).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Jurisdiction(pub u8);

/// Regulatory attributes of one ground station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StationAttrs {
    /// Where the station stands.
    pub jurisdiction: Jurisdiction,
}

/// A downlink license: `operator` may transmit to ground in
/// `jurisdiction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownlinkLicense {
    /// Licensed operator.
    pub operator: u32,
    /// Licensed jurisdiction.
    pub jurisdiction: Jurisdiction,
}

/// A user's (or flow's) routing policy.
#[derive(Debug, Clone, Default)]
pub struct RoutePolicy {
    /// Jurisdictions allowed to terminate the traffic; empty = any.
    pub allowed_exit: Vec<Jurisdiction>,
    /// Operators that must not carry any hop (distrust, sanctions).
    pub blocked_carriers: Vec<u32>,
}

impl RoutePolicy {
    /// The permissive default: any exit, any carrier.
    pub fn permissive() -> Self {
        Self::default()
    }

    /// Whether `j` is an acceptable exit jurisdiction.
    pub fn exit_allowed(&self, j: Jurisdiction) -> bool {
        self.allowed_exit.is_empty() || self.allowed_exit.contains(&j)
    }

    /// Whether `op` may carry a hop.
    pub fn carrier_allowed(&self, op: u32) -> bool {
        !self.blocked_carriers.contains(&op)
    }
}

/// Outcome of a policy-constrained route search.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyRoute {
    /// A compliant route exists.
    Compliant {
        /// The route.
        path: Path,
        /// Exit station's index in the station array.
        exit_station: usize,
    },
    /// Connectivity exists but every route violates policy.
    OnlyNonCompliant,
    /// No route at all.
    Unreachable,
}

/// Best (lowest-weight) route from satellite node `src` to any ground
/// station that satisfies `policy` and the operators' `licenses`.
///
/// `station_attrs[i]` describes the station at node `graph.station_node(i)`.
///
/// # Panics
/// Panics if `station_attrs` does not match the graph's station count.
pub fn policy_route(
    graph: &Graph,
    station_attrs: &[StationAttrs],
    licenses: &[DownlinkLicense],
    src: impl Into<crate::topology::NodeId>,
    policy: &RoutePolicy,
    weight: impl Fn(&crate::topology::Edge) -> f64 + Copy,
) -> PolicyRoute {
    let src = src.into();
    assert_eq!(
        station_attrs.len(),
        graph.station_count(),
        "one StationAttrs per station"
    );
    let n_sats = graph.satellite_count();
    let licensed = |op: u32, j: Jurisdiction| {
        licenses
            .iter()
            .any(|l| l.operator == op && l.jurisdiction == j)
    };

    let mut best: Option<(Path, usize)> = None;
    let mut any_route = false;
    for (gi, attrs) in station_attrs.iter().enumerate() {
        let dst = graph.station_node(gi);
        // Track raw reachability for the OnlyNonCompliant distinction.
        if shortest_path(graph, src, dst, weight).is_some() {
            any_route = true;
        }
        if !policy.exit_allowed(attrs.jurisdiction) {
            continue;
        }
        let constrained = shortest_path(graph, src, dst, |e| {
            if !policy.carrier_allowed(e.operator.0) {
                return f64::INFINITY;
            }
            // A hop terminating at a ground station is a downlink: the
            // transmitting operator must hold a license there.
            if e.to >= n_sats {
                let j = station_attrs[e.to.0 - n_sats].jurisdiction;
                if !licensed(e.operator.0, j) {
                    return f64::INFINITY;
                }
            }
            weight(e)
        });
        if let Some(p) = constrained {
            if best
                .as_ref()
                .is_none_or(|(b, _)| p.total_cost < b.total_cost)
            {
                best = Some((p, gi));
            }
        }
    }
    match best {
        Some((path, exit_station)) => PolicyRoute::Compliant { path, exit_station },
        None if any_route => PolicyRoute::OnlyNonCompliant,
        None => PolicyRoute::Unreachable,
    }
}

/// Convenience check: does a computed path keep the user's traffic out of
/// blocked carriers and exit in an allowed jurisdiction? Used to audit
/// routes produced by policy-unaware routers. A path with a hop the graph
/// no longer carries (e.g. stale after a fault) fails the audit.
pub fn audit_path(
    graph: &Graph,
    station_attrs: &[StationAttrs],
    path: &Path,
    policy: &RoutePolicy,
) -> bool {
    // Carrier check on every hop.
    for w in path.nodes.windows(2) {
        match graph.find_edge(w[0], w[1]) {
            Some(e) if policy.carrier_allowed(e.operator.0) => {}
            _ => return false,
        }
    }
    // Exit check on the terminal node.
    let Some(&last) = path.nodes.last() else {
        return true; // empty path: vacuously compliant
    };
    match graph.node_kind(last) {
        NodeKind::GroundStation(gi) => policy.exit_allowed(station_attrs[gi.index()].jurisdiction),
        NodeKind::Satellite(_) => true, // not an exit path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::latency_weight;
    use crate::topology::LinkTech;

    /// sat0 —(op1)— sat1 —(op1)→ gs0 (juris A, near)
    ///   \—(op2)——— sat2 —(op2)→ gs1 (juris B, far)
    fn testnet() -> (Graph, Vec<StationAttrs>) {
        let mut g = Graph::new(3, 2);
        g.add_bidirectional(0, 1, 0.001, 1e7, 1, 1, LinkTech::Rf);
        g.add_bidirectional(0, 2, 0.002, 1e7, 2, 2, LinkTech::Rf);
        g.add_bidirectional(1, 3, 0.001, 1e8, 1, 9, LinkTech::Rf); // gs0
        g.add_bidirectional(2, 4, 0.002, 1e8, 2, 9, LinkTech::Rf); // gs1
        let attrs = vec![
            StationAttrs {
                jurisdiction: Jurisdiction(b'A'),
            },
            StationAttrs {
                jurisdiction: Jurisdiction(b'B'),
            },
        ];
        (g, attrs)
    }

    fn all_licenses() -> Vec<DownlinkLicense> {
        vec![
            DownlinkLicense {
                operator: 1,
                jurisdiction: Jurisdiction(b'A'),
            },
            DownlinkLicense {
                operator: 1,
                jurisdiction: Jurisdiction(b'B'),
            },
            DownlinkLicense {
                operator: 2,
                jurisdiction: Jurisdiction(b'A'),
            },
            DownlinkLicense {
                operator: 2,
                jurisdiction: Jurisdiction(b'B'),
            },
        ]
    }

    #[test]
    fn permissive_policy_picks_nearest_exit() {
        let (g, attrs) = testnet();
        let r = policy_route(
            &g,
            &attrs,
            &all_licenses(),
            0,
            &RoutePolicy::permissive(),
            latency_weight,
        );
        match r {
            PolicyRoute::Compliant { exit_station, .. } => assert_eq!(exit_station, 0),
            other => panic!("expected compliant, got {other:?}"),
        }
    }

    #[test]
    fn exit_restriction_forces_farther_station() {
        let (g, attrs) = testnet();
        let policy = RoutePolicy {
            allowed_exit: vec![Jurisdiction(b'B')],
            blocked_carriers: vec![],
        };
        let r = policy_route(&g, &attrs, &all_licenses(), 0, &policy, latency_weight);
        match r {
            PolicyRoute::Compliant { exit_station, path } => {
                assert_eq!(exit_station, 1);
                assert_eq!(path.nodes, vec![0usize, 2, 4]);
            }
            other => panic!("expected compliant via B, got {other:?}"),
        }
    }

    #[test]
    fn blocked_carrier_forces_detour_or_failure() {
        let (g, attrs) = testnet();
        // Block op2: the B exit becomes unreachable; A exit still works.
        let policy = RoutePolicy {
            allowed_exit: vec![],
            blocked_carriers: vec![2],
        };
        let r = policy_route(&g, &attrs, &all_licenses(), 0, &policy, latency_weight);
        match r {
            PolicyRoute::Compliant { exit_station, .. } => assert_eq!(exit_station, 0),
            other => panic!("{other:?}"),
        }
        // Block op1 too: connectivity exists but nothing complies.
        let policy = RoutePolicy {
            allowed_exit: vec![],
            blocked_carriers: vec![1, 2],
        };
        assert_eq!(
            policy_route(&g, &attrs, &all_licenses(), 0, &policy, latency_weight),
            PolicyRoute::OnlyNonCompliant
        );
    }

    #[test]
    fn missing_downlink_license_blocks_exit() {
        let (g, attrs) = testnet();
        // Only op2 is licensed anywhere: the op1 downlink at gs0 is out.
        let licenses = vec![DownlinkLicense {
            operator: 2,
            jurisdiction: Jurisdiction(b'B'),
        }];
        let r = policy_route(
            &g,
            &attrs,
            &licenses,
            0,
            &RoutePolicy::permissive(),
            latency_weight,
        );
        match r {
            PolicyRoute::Compliant { exit_station, .. } => assert_eq!(exit_station, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn privacy_plus_licensing_can_leave_no_route() {
        let (g, attrs) = testnet();
        // User insists on exiting in A, but nobody is licensed in A.
        let licenses = vec![DownlinkLicense {
            operator: 2,
            jurisdiction: Jurisdiction(b'B'),
        }];
        let policy = RoutePolicy {
            allowed_exit: vec![Jurisdiction(b'A')],
            blocked_carriers: vec![],
        };
        assert_eq!(
            policy_route(&g, &attrs, &licenses, 0, &policy, latency_weight),
            PolicyRoute::OnlyNonCompliant
        );
    }

    #[test]
    fn unreachable_distinguished_from_noncompliant() {
        let mut g = Graph::new(2, 1);
        // Satellite 1 exists but has no links at all.
        g.add_bidirectional(0, 2, 0.001, 1e8, 1, 9, LinkTech::Rf);
        let attrs = vec![StationAttrs {
            jurisdiction: Jurisdiction(b'A'),
        }];
        let r = policy_route(
            &g,
            &attrs,
            &all_licenses(),
            1,
            &RoutePolicy::permissive(),
            latency_weight,
        );
        assert_eq!(r, PolicyRoute::Unreachable);
    }

    #[test]
    fn audit_agrees_with_policy_router() {
        let (g, attrs) = testnet();
        let policy = RoutePolicy {
            allowed_exit: vec![Jurisdiction(b'B')],
            blocked_carriers: vec![1],
        };
        if let PolicyRoute::Compliant { path, .. } =
            policy_route(&g, &attrs, &all_licenses(), 0, &policy, latency_weight)
        {
            assert!(audit_path(&g, &attrs, &path, &policy));
        } else {
            panic!("route expected");
        }
        // A policy-unaware path through op1 fails the audit.
        let naive = shortest_path(&g, 0, 3, latency_weight).unwrap();
        assert!(!audit_path(&g, &attrs, &naive, &policy));
    }
}
