//! Seeded synthesis of a global user-population grid.
//!
//! The grid divides the Earth into `lat_cells x lon_cells` equal-angle
//! cells and apportions a configured number of users across them. The
//! synthesis is entirely deterministic in the seed and uses no external
//! data: a coherent value-noise field thresholded against a latitude
//! bias yields a pseudo-land mask, a latitude density profile (peaked
//! in the northern mid-latitudes, echoing where people actually live)
//! weights the rural background, and a Zipf-sized set of seeded city
//! hotspots concentrates the configured urban fraction. Users are
//! apportioned by largest remainder so per-cell counts always sum to
//! exactly `total_users`.

use openspace_sim::config::ConfigError;
use openspace_sim::rng::SimRng;

/// Resolution of the coarse noise lattice used for the land mask, in
/// grid cells per lattice node (both axes).
const NOISE_SCALE: usize = 6;

/// Configuration for [`PopulationGrid::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of latitude bands (rows). 36 gives 5° cells.
    pub lat_cells: usize,
    /// Number of longitude columns. 72 gives 5° cells.
    pub lon_cells: usize,
    /// Total synthetic users apportioned across the grid.
    pub total_users: u64,
    /// Number of Zipf-sized city hotspots drawn over land cells.
    pub cities: usize,
    /// Fraction of users concentrated in city hotspots (rest follow
    /// the rural background density). Must be in `[0, 1]`.
    pub urban_fraction: f64,
    /// Master seed for the land mask, noise field and city draws.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            lat_cells: 36,
            lon_cells: 72,
            total_users: 1_000_000,
            cities: 160,
            urban_fraction: 0.65,
            seed: 1,
        }
    }
}

impl PopulationConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lat_cells == 0 {
            return Err(ConfigError::NonPositive {
                field: "lat_cells",
                value: 0.0,
            });
        }
        if self.lon_cells == 0 {
            return Err(ConfigError::NonPositive {
                field: "lon_cells",
                value: 0.0,
            });
        }
        if self.total_users == 0 {
            return Err(ConfigError::NonPositive {
                field: "total_users",
                value: 0.0,
            });
        }
        if !self.urban_fraction.is_finite()
            || self.urban_fraction < 0.0
            || self.urban_fraction > 1.0
        {
            return Err(ConfigError::OutOfRange {
                field: "urban_fraction",
                value: self.urban_fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(())
    }
}

/// A lat/lon grid of cells with deterministic synthetic user counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationGrid {
    lat_cells: usize,
    lon_cells: usize,
    users: Vec<u64>,
    land: Vec<bool>,
    total_users: u64,
    seed: u64,
}

/// Relative population density as a function of latitude (degrees).
///
/// Two Gaussian lobes: a dominant northern mid-latitude band (peak
/// ~30°N) and a weaker southern band (~15°S). Purely statistical — the
/// goal is a realistic latitude histogram, not geographic fidelity.
fn latitude_density(lat_deg: f64) -> f64 {
    let north = (-((lat_deg - 30.0) / 25.0).powi(2)).exp();
    let south = 0.35 * (-((lat_deg + 15.0) / 20.0).powi(2)).exp();
    north + south
}

/// Hash a coarse lattice node to a uniform value in `[0, 1)`.
fn lattice_value(seed: u64, row: u64, col: u64) -> f64 {
    let stream = row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ col;
    SimRng::substream(seed, stream).uniform()
}

impl PopulationGrid {
    /// Synthesize a grid from `cfg`. Deterministic in `cfg` alone.
    pub fn build(cfg: &PopulationConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.lat_cells * cfg.lon_cells;
        let noise_rows = cfg.lat_cells.div_ceil(NOISE_SCALE).max(1);
        let noise_cols = cfg.lon_cells.div_ceil(NOISE_SCALE).max(1);

        // Coherent value-noise field: bilinear interpolation of hashed
        // lattice nodes, periodic in longitude so the mask wraps.
        let mut field = vec![0.0f64; n];
        let mut land = vec![false; n];
        for i in 0..cfg.lat_cells {
            let lat = -90.0 + (i as f64 + 0.5) * 180.0 / cfg.lat_cells as f64;
            let fy = i as f64 / NOISE_SCALE as f64;
            let y0 = (fy.floor() as usize).min(noise_rows - 1);
            let ty = fy - y0 as f64;
            for j in 0..cfg.lon_cells {
                let fx = j as f64 / NOISE_SCALE as f64;
                let x0 = (fx.floor() as usize) % noise_cols;
                let tx = fx - fx.floor();
                let x1 = (x0 + 1) % noise_cols;
                let y1 = (y0 + 1).min(noise_rows);
                let v00 = lattice_value(cfg.seed, y0 as u64, x0 as u64);
                let v01 = lattice_value(cfg.seed, y0 as u64, x1 as u64);
                let v10 = lattice_value(cfg.seed, y1 as u64, x0 as u64);
                let v11 = lattice_value(cfg.seed, y1 as u64, x1 as u64);
                let v = v00 * (1.0 - tx) * (1.0 - ty)
                    + v01 * tx * (1.0 - ty)
                    + v10 * (1.0 - tx) * ty
                    + v11 * tx * ty;
                let idx = i * cfg.lon_cells + j;
                field[idx] = v;
                // More land mid-northern-latitudes, less near the poles
                // and the southern ocean belt: bias the threshold.
                let bias = 0.12 * (lat.to_radians().sin() + 0.3) - 0.04 * (lat.abs() / 90.0);
                land[idx] = v + bias > 0.55;
            }
        }

        // Rural background weight: land cells, latitude density, true
        // cell area (∝ cos lat) and the noise field for texture.
        let mut rural = vec![0.0f64; n];
        let mut rural_sum = 0.0;
        for i in 0..cfg.lat_cells {
            let lat = -90.0 + (i as f64 + 0.5) * 180.0 / cfg.lat_cells as f64;
            let area = lat.to_radians().cos().max(0.0);
            for j in 0..cfg.lon_cells {
                let idx = i * cfg.lon_cells + j;
                if land[idx] {
                    let w = latitude_density(lat) * area * (0.5 + field[idx]);
                    rural[idx] = w;
                    rural_sum += w;
                }
            }
        }
        if rural_sum <= 0.0 {
            // Degenerate mask (tiny grids): fall back to area weighting
            // so the grid is still usable.
            rural_sum = 0.0;
            for i in 0..cfg.lat_cells {
                let lat = -90.0 + (i as f64 + 0.5) * 180.0 / cfg.lat_cells as f64;
                let area = lat.to_radians().cos().max(1e-6);
                for j in 0..cfg.lon_cells {
                    let idx = i * cfg.lon_cells + j;
                    rural[idx] = area;
                    land[idx] = true;
                    rural_sum += area;
                }
            }
        }

        // City hotspots: weighted draws over the rural distribution,
        // sized by a Zipf law (city k carries weight 1/(k+1)).
        let mut urban = vec![0.0f64; n];
        let mut urban_sum = 0.0;
        let mut city_rng = SimRng::substream(cfg.seed, 0xC17B_17E5);
        let cumulative: Vec<f64> = rural
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        for k in 0..cfg.cities {
            let r = city_rng.uniform() * rural_sum;
            let idx = cumulative.partition_point(|&c| c < r).min(n - 1);
            let w = 1.0 / (k as f64 + 1.0);
            urban[idx] += w;
            urban_sum += w;
        }
        if urban_sum <= 0.0 {
            urban_sum = 1.0; // no cities requested: urban share is zero anyway
        }

        // Blend and apportion by largest remainder so counts sum to
        // exactly total_users.
        let uf = if cfg.cities == 0 {
            0.0
        } else {
            cfg.urban_fraction
        };
        let mut quota: Vec<f64> = (0..n)
            .map(|idx| {
                let w = (1.0 - uf) * rural[idx] / rural_sum + uf * urban[idx] / urban_sum;
                w * cfg.total_users as f64
            })
            .collect();
        let mut users = vec![0u64; n];
        let mut assigned = 0u64;
        for idx in 0..n {
            let floor = quota[idx].floor();
            users[idx] = floor as u64;
            assigned += users[idx];
            quota[idx] -= floor;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| quota[b].total_cmp(&quota[a]).then(a.cmp(&b)));
        let mut remaining = cfg.total_users - assigned;
        for &idx in &order {
            if remaining == 0 {
                break;
            }
            users[idx] += 1;
            remaining -= 1;
        }

        Ok(Self {
            lat_cells: cfg.lat_cells,
            lon_cells: cfg.lon_cells,
            users,
            land,
            total_users: cfg.total_users,
            seed: cfg.seed,
        })
    }

    /// Number of latitude rows.
    pub fn lat_cells(&self) -> usize {
        self.lat_cells
    }

    /// Number of longitude columns.
    pub fn lon_cells(&self) -> usize {
        self.lon_cells
    }

    /// Total number of cells (`lat_cells * lon_cells`).
    pub fn cell_count(&self) -> usize {
        self.users.len()
    }

    /// Master seed the grid was synthesized from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Users in cell `idx` (row-major: `lat_row * lon_cells + lon_col`).
    pub fn users(&self, idx: usize) -> u64 {
        self.users[idx]
    }

    /// Sum of all cell user counts (exactly the configured total).
    pub fn total_users(&self) -> u64 {
        self.total_users
    }

    /// Whether cell `idx` is land under the synthetic mask.
    pub fn is_land(&self, idx: usize) -> bool {
        self.land[idx]
    }

    /// Number of cells with at least one user.
    pub fn populated_cell_count(&self) -> usize {
        self.users.iter().filter(|&&u| u > 0).count()
    }

    /// Geodetic center of cell `idx` as `(lat_deg, lon_deg)`.
    pub fn cell_center_deg(&self, idx: usize) -> (f64, f64) {
        let i = idx / self.lon_cells;
        let j = idx % self.lon_cells;
        let lat = -90.0 + (i as f64 + 0.5) * 180.0 / self.lat_cells as f64;
        let lon = -180.0 + (j as f64 + 0.5) * 360.0 / self.lon_cells as f64;
        (lat, lon)
    }

    /// Iterate populated cells as `(cell_index, users)` in ascending
    /// cell order.
    pub fn populated_cells(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.users
            .iter()
            .enumerate()
            .filter(|(_, &u)| u > 0)
            .map(|(idx, &u)| (idx, u))
    }

    /// The `n` most-populated cells as `(cell_index, users)`, largest
    /// first (ties broken by cell index, so the order is total).
    pub fn top_cells(&self, n: usize) -> Vec<(usize, u64)> {
        let mut cells: Vec<(usize, u64)> = self.populated_cells().collect();
        cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.truncate(n);
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_sum_exactly_to_total() {
        let cfg = PopulationConfig {
            total_users: 1_234_567,
            ..Default::default()
        };
        let grid = PopulationGrid::build(&cfg).unwrap();
        let sum: u64 = (0..grid.cell_count()).map(|i| grid.users(i)).sum();
        assert_eq!(sum, 1_234_567);
        assert_eq!(grid.total_users(), 1_234_567);
    }

    #[test]
    fn same_seed_is_bitwise_stable() {
        let cfg = PopulationConfig::default();
        let a = PopulationGrid::build(&cfg).unwrap();
        let b = PopulationGrid::build(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_the_map() {
        let a = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let b = PopulationGrid::build(&PopulationConfig {
            seed: 99,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn northern_hemisphere_dominates() {
        let grid = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let mid = grid.lat_cells() / 2;
        let mut south = 0u64;
        let mut north = 0u64;
        for i in 0..grid.lat_cells() {
            for j in 0..grid.lon_cells() {
                let u = grid.users(i * grid.lon_cells() + j);
                if i < mid {
                    south += u;
                } else {
                    north += u;
                }
            }
        }
        assert!(
            north > south,
            "expected northern dominance, got N={north} S={south}"
        );
    }

    #[test]
    fn cities_concentrate_users() {
        let no_cities = PopulationGrid::build(&PopulationConfig {
            cities: 0,
            ..Default::default()
        })
        .unwrap();
        let with_cities = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let top_share = |g: &PopulationGrid| {
            let top: u64 = g.top_cells(10).iter().map(|&(_, u)| u).sum();
            top as f64 / g.total_users() as f64
        };
        assert!(top_share(&with_cities) > top_share(&no_cities));
    }

    #[test]
    fn cell_center_round_trips() {
        let grid = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let (lat, lon) = grid.cell_center_deg(0);
        assert!((-90.0..=90.0).contains(&lat));
        assert!((-180.0..=180.0).contains(&lon));
        let last = grid.cell_count() - 1;
        let (lat, lon) = grid.cell_center_deg(last);
        assert!((-90.0..=90.0).contains(&lat));
        assert!((-180.0..=180.0).contains(&lon));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(PopulationGrid::build(&PopulationConfig {
            lat_cells: 0,
            ..Default::default()
        })
        .is_err());
        assert!(PopulationGrid::build(&PopulationConfig {
            total_users: 0,
            ..Default::default()
        })
        .is_err());
        assert!(PopulationGrid::build(&PopulationConfig {
            urban_fraction: 1.5,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn top_cells_ordering_is_total() {
        let grid = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let top = grid.top_cells(20);
        for w in top.windows(2) {
            assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
    }
}
