//! Geo-aware user population and time-varying demand synthesis.
//!
//! The paper's roadmap (§5) asks for "modelling a potential user base
//! along with potential user traffic patterns" before any federation
//! economics can be evaluated. This crate supplies that workload layer:
//!
//! - [`grid::PopulationGrid`] — a lat/lon grid of cells whose user
//!   counts are synthesized deterministically from a seed (latitude
//!   density bands, a coherent pseudo-land mask, Zipf-sized city
//!   hotspots). No external data sets are consulted, so two builds of
//!   the same config are bitwise-identical on any machine.
//! - [`diurnal::DiurnalProfile`] — 24-hour activity curves evaluated in
//!   *local solar time* per cell, so the load peak sweeps westward over
//!   a simulated day exactly as real demand does.
//! - [`mix::AppMix`] — an application mix (streaming / web / voice /
//!   IoT) mapping each class onto an arrival process and per-user rate
//!   and packet-size parameters.
//! - [`model::DemandModel`] — aggregates millions of users into
//!   per-cell offered load and emits deterministic per-cell, per-class
//!   flow descriptions: [`model::DemandModel::flows_at`] for one
//!   instant and [`model::DemandModel::demand_timeline`] for a whole
//!   horizon, built through `parallel_map_seeded` so the parallel
//!   build is bitwise-identical to the serial one.
//!
//! The crate depends only on `openspace-sim` (rng, exec, config) and
//! `openspace-telemetry`; mapping cells onto constellation nodes lives
//! upstream in `openspace-core::demand` so this layer stays reusable by
//! anything that needs a synthetic user base.

#![deny(missing_docs)]

pub mod diurnal;
pub mod grid;
pub mod mix;
pub mod model;

/// Convenience re-exports of the main demand-layer types.
pub mod prelude {
    pub use crate::diurnal::DiurnalProfile;
    pub use crate::grid::{PopulationConfig, PopulationGrid};
    pub use crate::mix::{AppClass, AppMix, ArrivalKind, ClassSpec};
    pub use crate::model::{DemandConfig, DemandFlow, DemandModel, DemandTick};
}
