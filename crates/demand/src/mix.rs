//! Application mix: traffic classes, per-user rates and arrival kinds.
//!
//! Each [`ClassSpec`] describes one application class — what fraction
//! of users subscribe to it, how many bits per second an *active* user
//! offers on average, the packet size, which arrival process models it
//! and which [`DiurnalProfile`] gates its activity. An [`AppMix`] is
//! the validated list of classes a [`crate::model::DemandModel`]
//! aggregates over. The [`ArrivalKind`] mirrors the simulator's
//! `TrafficKind` (CBR / Poisson / on-off bursts) without depending on
//! `openspace-core`, so the mapping is a trivial match in the bridge
//! layer.

use crate::diurnal::DiurnalProfile;
use openspace_sim::config::{require_positive, ConfigError};

/// The four modeled application classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AppClass {
    /// Video streaming: high rate, big packets, evening peak, bursty.
    Streaming,
    /// Interactive web / enterprise: medium rate, business hours.
    Web,
    /// Voice calls: low constant rate, small packets, waking hours.
    Voice,
    /// IoT telemetry: tiny rate, tiny packets, near-flat profile.
    Iot,
}

impl AppClass {
    /// All classes in canonical order.
    pub const ALL: [AppClass; 4] = [
        AppClass::Streaming,
        AppClass::Web,
        AppClass::Voice,
        AppClass::Iot,
    ];

    /// Stable lowercase name (used in manifests and telemetry keys).
    pub fn as_str(&self) -> &'static str {
        match self {
            AppClass::Streaming => "streaming",
            AppClass::Web => "web",
            AppClass::Voice => "voice",
            AppClass::Iot => "iot",
        }
    }
}

/// Arrival process for a class, mirroring `core::netsim::TrafficKind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Constant bit rate.
    Cbr,
    /// Poisson arrivals at the mean rate.
    Poisson,
    /// On-off bursts: exponential ON/OFF holding times; the emitted
    /// flow rate is the *peak* (ON-period) rate chosen so the long-run
    /// mean matches the class's offered load.
    OnOff {
        /// Mean ON-period duration in seconds.
        mean_on_s: f64,
        /// Mean OFF-period duration in seconds.
        mean_off_s: f64,
    },
}

/// One application class in the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Which class this is.
    pub class: AppClass,
    /// Fraction of the cell's users subscribed to this class. Shares
    /// need not sum to 1 (users run several apps).
    pub share: f64,
    /// Mean offered bits/s per *active* user of this class.
    pub per_user_bps: f64,
    /// Packet size in bytes for the emitted flow.
    pub packet_bytes: u32,
    /// Arrival process modeling the class.
    pub process: ArrivalKind,
    /// Activity curve gating the class in local solar time.
    pub diurnal: DiurnalProfile,
}

impl ClassSpec {
    fn validate(&self) -> Result<(), ConfigError> {
        require_positive("share", self.share)?;
        if self.share > 1.0 {
            return Err(ConfigError::OutOfRange {
                field: "share",
                value: self.share,
                min: 0.0,
                max: 1.0,
            });
        }
        require_positive("per_user_bps", self.per_user_bps)?;
        if self.packet_bytes == 0 {
            return Err(ConfigError::NonPositive {
                field: "packet_bytes",
                value: 0.0,
            });
        }
        if let ArrivalKind::OnOff {
            mean_on_s,
            mean_off_s,
        } = self.process
        {
            require_positive("mean_on_s", mean_on_s)?;
            require_positive("mean_off_s", mean_off_s)?;
        }
        Ok(())
    }

    /// Peak-rate multiplier for the class's arrival process: 1 for
    /// CBR/Poisson, `(on+off)/on` for on-off bursts (so the burst peak
    /// preserves the configured long-run mean).
    pub fn peak_factor(&self) -> f64 {
        match self.process {
            ArrivalKind::Cbr | ArrivalKind::Poisson => 1.0,
            ArrivalKind::OnOff {
                mean_on_s,
                mean_off_s,
            } => (mean_on_s + mean_off_s) / mean_on_s,
        }
    }
}

/// A validated, ordered list of application classes.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMix {
    classes: Vec<ClassSpec>,
}

impl AppMix {
    /// Build a mix from class specs (order is preserved and load
    /// summation follows it, so the aggregate is deterministic).
    pub fn new(classes: Vec<ClassSpec>) -> Result<Self, ConfigError> {
        if classes.is_empty() {
            return Err(ConfigError::Empty { field: "classes" });
        }
        for c in &classes {
            c.validate()?;
        }
        Ok(Self { classes })
    }

    /// A default broadband direct-to-device mix: streaming dominates
    /// the bits, IoT dominates the flat floor.
    pub fn broadband() -> Self {
        Self::new(vec![
            ClassSpec {
                class: AppClass::Streaming,
                share: 0.35,
                per_user_bps: 2_400.0,
                packet_bytes: 1200,
                process: ArrivalKind::OnOff {
                    mean_on_s: 120.0,
                    mean_off_s: 240.0,
                },
                diurnal: DiurnalProfile::streaming_evening(),
            },
            ClassSpec {
                class: AppClass::Web,
                share: 0.60,
                per_user_bps: 600.0,
                packet_bytes: 800,
                process: ArrivalKind::Poisson,
                diurnal: DiurnalProfile::business_hours(),
            },
            ClassSpec {
                class: AppClass::Voice,
                share: 0.40,
                per_user_bps: 240.0,
                packet_bytes: 160,
                process: ArrivalKind::Cbr,
                diurnal: DiurnalProfile::voice_daytime(),
            },
            ClassSpec {
                class: AppClass::Iot,
                share: 0.25,
                per_user_bps: 40.0,
                packet_bytes: 96,
                process: ArrivalKind::Poisson,
                diurnal: DiurnalProfile::iot_flat(),
            },
        ])
        .expect("broadband preset is valid")
    }

    /// The classes, in aggregation order.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Mean offered bits/s per user at full (activity = 1) load,
    /// summed over classes.
    pub fn per_user_full_activity_bps(&self) -> f64 {
        self.classes.iter().map(|c| c.share * c.per_user_bps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadband_mix_is_valid_and_ordered() {
        let mix = AppMix::broadband();
        assert_eq!(mix.classes().len(), 4);
        assert_eq!(mix.classes()[0].class, AppClass::Streaming);
        assert!(mix.per_user_full_activity_bps() > 0.0);
    }

    #[test]
    fn peak_factor_preserves_mean() {
        let mix = AppMix::broadband();
        let spec = &mix.classes()[0];
        match spec.process {
            ArrivalKind::OnOff {
                mean_on_s,
                mean_off_s,
            } => {
                let duty = mean_on_s / (mean_on_s + mean_off_s);
                assert!((spec.peak_factor() * duty - 1.0).abs() < 1e-12);
            }
            _ => panic!("streaming should be on-off"),
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut bad = AppMix::broadband().classes()[1].clone();
        bad.share = 0.0;
        assert!(AppMix::new(vec![bad]).is_err());
        let mut bad = AppMix::broadband().classes()[1].clone();
        bad.packet_bytes = 0;
        assert!(AppMix::new(vec![bad]).is_err());
        let mut bad = AppMix::broadband().classes()[0].clone();
        bad.process = ArrivalKind::OnOff {
            mean_on_s: 0.0,
            mean_off_s: 1.0,
        };
        assert!(AppMix::new(vec![bad]).is_err());
        assert!(AppMix::new(vec![]).is_err());
    }

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = AppClass::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, ["streaming", "web", "voice", "iot"]);
    }
}
