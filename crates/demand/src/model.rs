//! Aggregating a user population into deterministic flow workloads.
//!
//! A [`DemandModel`] combines a [`PopulationGrid`], an [`AppMix`] and a
//! [`DemandConfig`] into per-cell, per-class offered load at any
//! instant. [`DemandModel::flows_at`] is a *pure function of the query
//! time* — cell jitter comes from an RNG substream keyed on
//! `(seed, cell, t)` rather than from any mutable generator state — so
//! [`DemandModel::demand_timeline`] can fan ticks out over
//! `parallel_map_seeded` and the result is bitwise-identical for any
//! worker count, the same contract `net::timeline` gives topology
//! snapshots.
//!
//! # Determinism argument
//!
//! Three properties compose into the bitwise guarantee:
//! 1. grid synthesis is a pure function of `PopulationConfig`;
//! 2. per-cell activity at time `t` draws from
//!    `SimRng::substream(jitter_seed, mix(cell, t))` — no draw order
//!    dependence between cells or ticks;
//! 3. aggregation iterates cells ascending and classes in mix order,
//!    so floating-point summation order is fixed.
//!
//! Everything downstream (folding, capping, telemetry totals) is
//! ordinary deterministic arithmetic over that fixed order.

use crate::diurnal::local_solar_hour;
use crate::grid::PopulationGrid;
use crate::mix::{AppClass, AppMix, ArrivalKind};
use openspace_sim::config::{require_non_negative, require_positive, ConfigError};
use openspace_sim::exec::parallel_map_seeded;
use openspace_sim::rng::SimRng;
use openspace_telemetry::recorder::Recorder;

/// Salt separating the per-cell jitter stream family from other users
/// of the master seed.
const JITTER_SALT: u64 = 0x000D_EA4D_0001;

/// Knobs controlling how offered load becomes emitted flows.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandConfig {
    /// Relative per-cell activity jitter amplitude in `[0, 1)`: the
    /// activity of a cell at time `t` is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter)`.
    pub jitter: f64,
    /// Scale factor applied to emitted flow rates (`rate_bps`) so a
    /// million-user offered load can be transported through a
    /// packet-level simulation as a sampled workload. Offered-load
    /// accounting (`offered_bps`) is always unscaled.
    pub transport_scale: f64,
    /// Emitted flows whose **scaled** rate falls below this threshold
    /// are folded into the tick's `folded_bps` instead of being
    /// emitted (their offered load still counts).
    pub min_flow_bps: f64,
    /// Hard cap on flows emitted per tick; the largest-offered flows
    /// are kept (total order: offered desc, then cell, then class) and
    /// the remainder folded. `usize::MAX` disables the cap.
    pub max_flows_per_tick: usize,
}

impl Default for DemandConfig {
    fn default() -> Self {
        Self {
            jitter: 0.1,
            transport_scale: 1.0,
            min_flow_bps: 0.0,
            max_flows_per_tick: usize::MAX,
        }
    }
}

impl DemandConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !self.jitter.is_finite() || !(0.0..1.0).contains(&self.jitter) {
            return Err(ConfigError::OutOfRange {
                field: "jitter",
                value: self.jitter,
                min: 0.0,
                max: 1.0,
            });
        }
        require_positive("transport_scale", self.transport_scale)?;
        require_non_negative("min_flow_bps", self.min_flow_bps)?;
        Ok(())
    }
}

/// One emitted per-cell, per-class flow description.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandFlow {
    /// Source cell index in the population grid.
    pub cell: usize,
    /// Application class the flow aggregates.
    pub class: AppClass,
    /// Unscaled mean offered bits/s this flow represents.
    pub offered_bps: f64,
    /// Simulation rate in bits/s: offered load times
    /// `transport_scale`, times the class's peak factor for bursty
    /// (on-off) processes.
    pub rate_bps: f64,
    /// Packet size for the emitted flow.
    pub packet_bytes: u32,
    /// Arrival process for the emitted flow.
    pub process: ArrivalKind,
}

/// The demand snapshot at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTick {
    /// Query time in seconds (UTC; `0` is midnight).
    pub t_s: f64,
    /// Emitted flows, cells ascending then classes in mix order
    /// (possibly reordered by the per-tick cap, still deterministic).
    pub flows: Vec<DemandFlow>,
    /// Total unscaled offered bits/s across all cells and classes.
    pub offered_bps: f64,
    /// Expected number of active users (fractional: sum of per-class
    /// user-activity products).
    pub active_users: f64,
    /// Number of cells with nonzero offered load.
    pub active_cells: u64,
    /// Flows folded away by `min_flow_bps` or the per-tick cap.
    pub flows_folded: u64,
    /// Unscaled offered bits/s carried by folded flows.
    pub folded_bps: f64,
}

/// Aggregates a population grid and app mix into flow workloads.
#[derive(Debug, Clone)]
pub struct DemandModel {
    grid: PopulationGrid,
    mix: AppMix,
    cfg: DemandConfig,
    seed: u64,
}

impl DemandModel {
    /// Build a model; the grid's seed becomes the demand seed.
    pub fn new(grid: PopulationGrid, mix: AppMix, cfg: DemandConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let seed = grid.seed();
        Ok(Self {
            grid,
            mix,
            cfg,
            seed,
        })
    }

    /// The underlying population grid.
    pub fn grid(&self) -> &PopulationGrid {
        &self.grid
    }

    /// The application mix.
    pub fn mix(&self) -> &AppMix {
        &self.mix
    }

    /// The emission configuration.
    pub fn config(&self) -> &DemandConfig {
        &self.cfg
    }

    /// The cell-jitter factor at `(cell, t)`: a pure function of the
    /// model seed, the cell index and the bit pattern of `t_s`.
    fn jitter_factor(&self, cell: usize, t_s: f64) -> f64 {
        if self.cfg.jitter == 0.0 {
            return 1.0;
        }
        let stream = (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ t_s.to_bits();
        let mut rng = SimRng::substream(self.seed ^ JITTER_SALT, stream);
        1.0 + self.cfg.jitter * (2.0 * rng.uniform() - 1.0)
    }

    /// Per-class unscaled offered load for one cell at `t_s`, in mix
    /// order, as `(class, active_users, offered_bps)` triples.
    pub fn cell_class_offered(&self, cell: usize, t_s: f64) -> Vec<(AppClass, f64, f64)> {
        let users = self.grid.users(cell) as f64;
        let (_, lon) = self.grid.cell_center_deg(cell);
        let local = local_solar_hour(t_s, lon);
        let factor = self.jitter_factor(cell, t_s);
        self.mix
            .classes()
            .iter()
            .map(|c| {
                let active = users * c.share * c.diurnal.activity(local) * factor;
                (c.class, active, active * c.per_user_bps)
            })
            .collect()
    }

    /// Total unscaled offered load for one cell at `t_s` — by
    /// construction exactly the in-order sum of
    /// [`Self::cell_class_offered`] loads (bit-replayable, no
    /// tolerance needed).
    pub fn cell_offered_bps(&self, cell: usize, t_s: f64) -> f64 {
        self.cell_class_offered(cell, t_s)
            .iter()
            .map(|&(_, _, bps)| bps)
            .sum()
    }

    /// The demand snapshot at `t_s`: per-cell, per-class flows plus
    /// offered-load accounting. Pure in `t_s` — calling twice yields
    /// bitwise-identical ticks.
    pub fn flows_at(&self, t_s: f64) -> DemandTick {
        let mut flows = Vec::new();
        let mut offered_bps = 0.0;
        let mut active_users = 0.0;
        let mut active_cells = 0u64;
        let mut flows_folded = 0u64;
        let mut folded_bps = 0.0;

        for (cell, _) in self.grid.populated_cells() {
            let per_class = self.cell_class_offered(cell, t_s);
            let mut cell_offered = 0.0;
            for (i, &(class, active, class_bps)) in per_class.iter().enumerate() {
                cell_offered += class_bps;
                active_users += active;
                if class_bps <= 0.0 {
                    continue;
                }
                let spec = &self.mix.classes()[i];
                let rate_bps = class_bps * self.cfg.transport_scale * spec.peak_factor();
                if class_bps * self.cfg.transport_scale < self.cfg.min_flow_bps {
                    flows_folded += 1;
                    folded_bps += class_bps;
                    continue;
                }
                flows.push(DemandFlow {
                    cell,
                    class,
                    offered_bps: class_bps,
                    rate_bps,
                    packet_bytes: spec.packet_bytes,
                    process: spec.process,
                });
            }
            offered_bps += cell_offered;
            if cell_offered > 0.0 {
                active_cells += 1;
            }
        }

        // Per-tick cap: keep the largest offered loads under a total
        // order so the surviving set is deterministic.
        if flows.len() > self.cfg.max_flows_per_tick {
            flows.sort_by(|a, b| {
                b.offered_bps
                    .total_cmp(&a.offered_bps)
                    .then(a.cell.cmp(&b.cell))
                    .then(a.class.cmp(&b.class))
            });
            for f in flows.drain(self.cfg.max_flows_per_tick..) {
                flows_folded += 1;
                folded_bps += f.offered_bps;
            }
        }

        DemandTick {
            t_s,
            flows,
            offered_bps,
            active_users,
            active_cells,
            flows_folded,
            folded_bps,
        }
    }

    /// [`Self::flows_at`] plus `demand.*` telemetry for the tick.
    pub fn flows_at_recorded(&self, t_s: f64, rec: &mut dyn Recorder) -> DemandTick {
        let tick = self.flows_at(t_s);
        if rec.enabled() {
            rec.add("demand.flows_emitted", tick.flows.len() as u64);
            rec.add("demand.flows_folded", tick.flows_folded);
            rec.gauge_max("demand.offered_bps_peak", tick.offered_bps);
            rec.gauge_max("demand.active_cells_peak", tick.active_cells as f64);
        }
        tick
    }

    /// Demand snapshots at `0, step, 2·step, …` up to and including
    /// `horizon` (times accumulate iteratively, mirroring
    /// `net::timeline`), built on `threads` workers through
    /// `parallel_map_seeded`. Bitwise-identical for any worker count.
    pub fn demand_timeline(
        &self,
        step_s: f64,
        horizon_s: f64,
        threads: usize,
    ) -> Result<Vec<DemandTick>, ConfigError> {
        require_positive("step_s", step_s)?;
        require_non_negative("horizon_s", horizon_s)?;
        let mut times = Vec::new();
        let mut t = 0.0;
        while t <= horizon_s + 1e-9 {
            times.push(t);
            t += step_s;
        }
        // flows_at is pure in t, so the per-task rng is deliberately
        // unused — thread-count invariance falls out of purity.
        Ok(parallel_map_seeded(
            &times,
            threads,
            self.seed,
            |&t, _rng| self.flows_at(t),
        ))
    }

    /// [`Self::demand_timeline`] plus aggregate `demand.*` telemetry.
    pub fn demand_timeline_recorded(
        &self,
        step_s: f64,
        horizon_s: f64,
        threads: usize,
        rec: &mut dyn Recorder,
    ) -> Result<Vec<DemandTick>, ConfigError> {
        let ticks = self.demand_timeline(step_s, horizon_s, threads)?;
        if rec.enabled() {
            rec.add("demand.users", self.grid.total_users());
            rec.add("demand.ticks", ticks.len() as u64);
            for tick in &ticks {
                rec.add("demand.flows_emitted", tick.flows.len() as u64);
                rec.add("demand.flows_folded", tick.flows_folded);
                rec.gauge_max("demand.offered_bps_peak", tick.offered_bps);
                rec.gauge_max("demand.active_cells_peak", tick.active_cells as f64);
            }
        }
        Ok(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PopulationConfig;
    use openspace_telemetry::recorder::MemoryRecorder;

    fn small_model(cfg: DemandConfig) -> DemandModel {
        let grid = PopulationGrid::build(&PopulationConfig {
            lat_cells: 12,
            lon_cells: 24,
            total_users: 50_000,
            cities: 24,
            ..Default::default()
        })
        .unwrap();
        DemandModel::new(grid, AppMix::broadband(), cfg).unwrap()
    }

    #[test]
    fn flows_at_is_pure_in_time() {
        let m = small_model(DemandConfig::default());
        let a = m.flows_at(7.5 * 3600.0);
        let b = m.flows_at(7.5 * 3600.0);
        assert_eq!(a, b);
        assert_ne!(a, m.flows_at(8.0 * 3600.0));
    }

    #[test]
    fn offered_accounting_is_exact() {
        let m = small_model(DemandConfig {
            min_flow_bps: 50.0,
            transport_scale: 1.0,
            ..Default::default()
        });
        let tick = m.flows_at(13.0 * 3600.0);
        let emitted: f64 = tick.flows.iter().map(|f| f.offered_bps).sum();
        // Emitted + folded must cover all offered load; exactness of
        // the per-cell decomposition is asserted in the cross-crate
        // property suite, here we bound the summation reordering.
        assert!((emitted + tick.folded_bps - tick.offered_bps).abs() < 1e-6 * tick.offered_bps);
        assert!(tick.flows_folded > 0, "threshold should fold tiny flows");
    }

    #[test]
    fn per_cell_loads_match_class_sums_exactly() {
        let m = small_model(DemandConfig::default());
        let t = 17.25 * 3600.0;
        for (cell, _) in m.grid().populated_cells() {
            let total = m.cell_offered_bps(cell, t);
            let by_class: f64 = m
                .cell_class_offered(cell, t)
                .iter()
                .map(|&(_, _, bps)| bps)
                .sum();
            assert_eq!(total.to_bits(), by_class.to_bits());
        }
    }

    #[test]
    fn diurnal_swing_is_visible_over_a_day() {
        let m = small_model(DemandConfig {
            jitter: 0.0,
            ..Default::default()
        });
        let ticks = m.demand_timeline(3600.0, 86400.0 - 1.0, 1).unwrap();
        assert_eq!(ticks.len(), 24);
        let max = ticks.iter().map(|t| t.offered_bps).fold(f64::MIN, f64::max);
        let min = ticks.iter().map(|t| t.offered_bps).fold(f64::MAX, f64::min);
        assert!(
            max / min > 1.2,
            "expected a diurnal swing, got peak/trough {}",
            max / min
        );
    }

    #[test]
    fn timeline_is_thread_count_invariant() {
        let m = small_model(DemandConfig::default());
        let serial = m.demand_timeline(7200.0, 86400.0, 1).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(m.demand_timeline(7200.0, 86400.0, threads).unwrap(), serial);
        }
    }

    #[test]
    fn per_tick_cap_keeps_the_largest_flows() {
        let uncapped = small_model(DemandConfig::default()).flows_at(20.0 * 3600.0);
        let m = small_model(DemandConfig {
            max_flows_per_tick: 10,
            ..Default::default()
        });
        let capped = m.flows_at(20.0 * 3600.0);
        assert_eq!(capped.flows.len(), 10);
        let mut best: Vec<f64> = uncapped.flows.iter().map(|f| f.offered_bps).collect();
        best.sort_by(|a, b| b.total_cmp(a));
        let kept_min = capped
            .flows
            .iter()
            .map(|f| f.offered_bps)
            .fold(f64::MAX, f64::min);
        assert!(kept_min >= best[9] - 1e-9);
        assert_eq!(
            capped.offered_bps.to_bits(),
            uncapped.offered_bps.to_bits(),
            "capping must not change offered-load accounting"
        );
    }

    #[test]
    fn transport_scale_only_touches_sim_rates() {
        let base = small_model(DemandConfig {
            jitter: 0.0,
            ..Default::default()
        });
        let scaled = small_model(DemandConfig {
            jitter: 0.0,
            transport_scale: 1e-3,
            ..Default::default()
        });
        let a = base.flows_at(12.0 * 3600.0);
        let b = scaled.flows_at(12.0 * 3600.0);
        assert_eq!(a.offered_bps.to_bits(), b.offered_bps.to_bits());
        assert!((b.flows[0].rate_bps - a.flows[0].rate_bps * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn onoff_flows_carry_peak_rates() {
        let m = small_model(DemandConfig {
            jitter: 0.0,
            ..Default::default()
        });
        let tick = m.flows_at(21.0 * 3600.0);
        let streaming = tick
            .flows
            .iter()
            .find(|f| f.class == AppClass::Streaming)
            .expect("streaming active at 21:00 somewhere");
        match streaming.process {
            ArrivalKind::OnOff {
                mean_on_s,
                mean_off_s,
            } => {
                let duty = mean_on_s / (mean_on_s + mean_off_s);
                assert!((streaming.rate_bps * duty - streaming.offered_bps).abs() < 1e-6);
            }
            _ => panic!("streaming should emit on-off flows"),
        }
    }

    #[test]
    fn recorded_timeline_emits_demand_counters() {
        let m = small_model(DemandConfig::default());
        let mut rec = MemoryRecorder::new();
        let ticks = m
            .demand_timeline_recorded(21600.0, 86400.0, 2, &mut rec)
            .unwrap();
        assert_eq!(ticks.len(), 5);
        assert_eq!(rec.counter("demand.users"), 50_000);
        assert_eq!(rec.counter("demand.ticks"), 5);
        assert!(rec.counter("demand.flows_emitted") > 0);
        assert!(rec.maximum("demand.offered_bps_peak").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn invalid_demand_configs_are_rejected() {
        let grid = PopulationGrid::build(&PopulationConfig::default()).unwrap();
        let bad = DemandConfig {
            jitter: 1.0,
            ..Default::default()
        };
        assert!(DemandModel::new(grid.clone(), AppMix::broadband(), bad).is_err());
        let bad = DemandConfig {
            transport_scale: 0.0,
            ..Default::default()
        };
        assert!(DemandModel::new(grid, AppMix::broadband(), bad).is_err());
    }
}
