//! Diurnal activity profiles evaluated in local solar time.
//!
//! Demand is not flat over a day: streaming peaks in the evening,
//! business traffic tracks working hours, voice follows waking hours
//! and IoT telemetry is near-constant. A [`DiurnalProfile`] is a
//! 24-entry piecewise-linear activity curve (fraction of subscribed
//! users active, in `[0, 1]`) evaluated at a cell's *local solar* hour,
//! so as simulation time advances the activity peak sweeps westward
//! around the globe — the effect the paper's shared-infrastructure
//! argument leans on (a constellation sized for one longitude's peak
//! is idle capacity everywhere else).

use openspace_sim::config::ConfigError;

/// Convert absolute simulation time and a longitude into local solar
/// hours in `[0, 24)`. `t_s = 0` is midnight UTC; each 15° of east
/// longitude advances local time by one hour.
pub fn local_solar_hour(t_s: f64, lon_deg: f64) -> f64 {
    (t_s / 3600.0 + lon_deg / 15.0).rem_euclid(24.0)
}

/// A 24-hour activity curve, linearly interpolated and periodic.
///
/// Entry `h` is the activity at local hour `h` (fraction of subscribed
/// users active); between integer hours the curve interpolates
/// linearly, and hour 23 wraps to hour 0.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    hourly: [f64; 24],
}

impl DiurnalProfile {
    /// Build a profile from 24 hourly activity fractions.
    ///
    /// Each entry must be finite and in `[0, 1]`, and at least one
    /// entry must be positive (an all-zero profile would silently
    /// erase a traffic class).
    pub fn new(hourly: [f64; 24]) -> Result<Self, ConfigError> {
        for &v in &hourly {
            if !v.is_finite() {
                return Err(ConfigError::NotFinite { field: "hourly" });
            }
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::OutOfRange {
                    field: "hourly",
                    value: v,
                    min: 0.0,
                    max: 1.0,
                });
            }
        }
        if hourly.iter().all(|&v| v == 0.0) {
            return Err(ConfigError::Empty { field: "hourly" });
        }
        Ok(Self { hourly })
    }

    /// Constant activity at `level` for every hour.
    pub fn flat(level: f64) -> Result<Self, ConfigError> {
        Self::new([level; 24])
    }

    /// Evening-peaked curve for video streaming: low overnight, a
    /// shoulder through the afternoon, peak 20:00–22:00 local.
    pub fn streaming_evening() -> Self {
        Self::new([
            0.08, 0.05, 0.03, 0.02, 0.02, 0.03, 0.06, 0.10, 0.14, 0.16, 0.18, 0.20, //
            0.22, 0.22, 0.24, 0.26, 0.30, 0.38, 0.48, 0.58, 0.66, 0.68, 0.50, 0.22,
        ])
        .expect("preset profile is valid")
    }

    /// Working-hours curve for interactive web/enterprise traffic.
    pub fn business_hours() -> Self {
        Self::new([
            0.04, 0.03, 0.02, 0.02, 0.02, 0.04, 0.10, 0.22, 0.40, 0.52, 0.56, 0.55, //
            0.50, 0.54, 0.56, 0.54, 0.48, 0.38, 0.28, 0.22, 0.18, 0.14, 0.10, 0.06,
        ])
        .expect("preset profile is valid")
    }

    /// Waking-hours curve for voice calls, mild midday peak.
    pub fn voice_daytime() -> Self {
        Self::new([
            0.02, 0.01, 0.01, 0.01, 0.01, 0.02, 0.05, 0.10, 0.16, 0.20, 0.22, 0.24, //
            0.24, 0.22, 0.22, 0.22, 0.22, 0.24, 0.24, 0.20, 0.16, 0.12, 0.08, 0.04,
        ])
        .expect("preset profile is valid")
    }

    /// Near-flat telemetry curve for IoT devices (reporting never
    /// sleeps, with a faint daytime bump from actuation traffic).
    pub fn iot_flat() -> Self {
        Self::new([
            0.30, 0.30, 0.30, 0.30, 0.30, 0.30, 0.32, 0.34, 0.36, 0.36, 0.36, 0.36, //
            0.36, 0.36, 0.36, 0.36, 0.36, 0.36, 0.34, 0.32, 0.30, 0.30, 0.30, 0.30,
        ])
        .expect("preset profile is valid")
    }

    /// Activity at `local_hour` (any finite value; wrapped into
    /// `[0, 24)` and linearly interpolated).
    pub fn activity(&self, local_hour: f64) -> f64 {
        let h = local_hour.rem_euclid(24.0);
        let lo = h.floor() as usize % 24;
        let hi = (lo + 1) % 24;
        let t = h - h.floor();
        self.hourly[lo] * (1.0 - t) + self.hourly[hi] * t
    }

    /// Mean activity over the 24 hourly samples.
    pub fn mean_activity(&self) -> f64 {
        self.hourly.iter().sum::<f64>() / 24.0
    }

    /// Ratio of the largest to the smallest hourly activity (the
    /// profile's diurnal swing). Infinite if any hour is zero.
    pub fn peak_to_trough(&self) -> f64 {
        let max = self.hourly.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.hourly.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_solar_hour_offsets_by_longitude() {
        assert!((local_solar_hour(0.0, 0.0) - 0.0).abs() < 1e-12);
        assert!((local_solar_hour(0.0, 90.0) - 6.0).abs() < 1e-12);
        assert!((local_solar_hour(0.0, -90.0) - 18.0).abs() < 1e-12);
        assert!((local_solar_hour(3600.0 * 25.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activity_interpolates_and_wraps() {
        let p = DiurnalProfile::streaming_evening();
        let a20 = p.activity(20.0);
        let a21 = p.activity(21.0);
        let mid = p.activity(20.5);
        assert!((mid - 0.5 * (a20 + a21)).abs() < 1e-12);
        // wrap: hour 23.5 interpolates toward hour 0
        let w = p.activity(23.5);
        assert!((w - 0.5 * (p.activity(23.0) + p.activity(0.0))).abs() < 1e-12);
        // periodicity
        assert_eq!(p.activity(44.0).to_bits(), p.activity(20.0).to_bits());
    }

    #[test]
    fn presets_have_expected_shapes() {
        let s = DiurnalProfile::streaming_evening();
        assert!(s.activity(21.0) > 5.0 * s.activity(3.0));
        let b = DiurnalProfile::business_hours();
        assert!(b.activity(10.0) > b.activity(22.0));
        let i = DiurnalProfile::iot_flat();
        assert!(i.peak_to_trough() < 1.5);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(DiurnalProfile::new([1.5; 24]).is_err());
        assert!(DiurnalProfile::new([f64::NAN; 24]).is_err());
        assert!(DiurnalProfile::new([0.0; 24]).is_err());
        assert!(DiurnalProfile::flat(0.5).is_ok());
    }
}
