//! Peering detection.
//!
//! §3: "if two providers realize they are routing similar amounts of
//! traffic through each other's systems, and that their routing paths are
//! heavily interdependent, they may decide to peer." This module encodes
//! that rule: symmetric-enough bilateral volume above a materiality floor
//! ⇒ recommend settlement-free peering.

use crate::ledger::TrafficLedger;
use openspace_protocol::types::OperatorId;

/// Parameters of the peering policy.
#[derive(Debug, Clone, Copy)]
pub struct PeeringPolicy {
    /// Maximum asymmetry ratio `|a−b| / max(a,b)` to still count as
    /// "similar amounts" (e.g. 0.25 = within 25%).
    pub max_asymmetry: f64,
    /// Minimum bilateral volume (bytes in each direction) for peering to
    /// be worth the paperwork.
    pub min_bytes_each_way: u64,
}

impl Default for PeeringPolicy {
    fn default() -> Self {
        Self {
            max_asymmetry: 0.25,
            min_bytes_each_way: 1024 * 1024 * 1024, // 1 GiB
        }
    }
}

/// Outcome of evaluating one operator pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeeringVerdict {
    /// Flows are symmetric and material: peer (drop bilateral billing).
    RecommendPeering {
        /// Bytes `a` carried for `b`.
        a_carries_for_b: u64,
        /// Bytes `b` carried for `a`.
        b_carries_for_a: u64,
    },
    /// Flows are too asymmetric: keep the customer/provider billing.
    KeepTransit {
        /// The measured asymmetry ratio.
        asymmetry: f64,
    },
    /// Volume is below the materiality floor.
    TooSmall,
}

/// Evaluate the §3 peering rule for operators `a` and `b`, using `a`'s
/// ledger as the (already cross-verified) source of bilateral volumes.
pub fn evaluate_peering(
    ledger: &TrafficLedger,
    a: OperatorId,
    b: OperatorId,
    policy: &PeeringPolicy,
) -> PeeringVerdict {
    let a_for_b = ledger.bytes_carried(b, a); // origin b, carrier a
    let b_for_a = ledger.bytes_carried(a, b); // origin a, carrier b
    if a_for_b < policy.min_bytes_each_way || b_for_a < policy.min_bytes_each_way {
        return PeeringVerdict::TooSmall;
    }
    let hi = a_for_b.max(b_for_a) as f64;
    let lo = a_for_b.min(b_for_a) as f64;
    let asymmetry = (hi - lo) / hi;
    if asymmetry <= policy.max_asymmetry {
        PeeringVerdict::RecommendPeering {
            a_carries_for_b: a_for_b,
            b_carries_for_a: b_for_a,
        }
    } else {
        PeeringVerdict::KeepTransit { asymmetry }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::BillingKey;

    const GIB: u64 = 1024 * 1024 * 1024;

    fn ledger(a_for_b: u64, b_for_a: u64) -> TrafficLedger {
        let mut l = TrafficLedger::new();
        l.record_raw(
            BillingKey {
                flow_id: 1,
                origin: OperatorId(2),
                carrier: OperatorId(1),
                interval_start_ms: 0,
            },
            a_for_b,
        );
        l.record_raw(
            BillingKey {
                flow_id: 2,
                origin: OperatorId(1),
                carrier: OperatorId(2),
                interval_start_ms: 0,
            },
            b_for_a,
        );
        l
    }

    #[test]
    fn symmetric_material_flows_peer() {
        let l = ledger(10 * GIB, 9 * GIB);
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &PeeringPolicy::default());
        assert!(matches!(v, PeeringVerdict::RecommendPeering { .. }));
    }

    #[test]
    fn asymmetric_flows_stay_transit() {
        let l = ledger(10 * GIB, 2 * GIB);
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &PeeringPolicy::default());
        match v {
            PeeringVerdict::KeepTransit { asymmetry } => assert!((asymmetry - 0.8).abs() < 1e-9),
            other => panic!("expected KeepTransit, got {other:?}"),
        }
    }

    #[test]
    fn tiny_flows_too_small() {
        let l = ledger(GIB / 2, GIB / 2);
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &PeeringPolicy::default());
        assert_eq!(v, PeeringVerdict::TooSmall);
    }

    #[test]
    fn one_sided_flow_too_small() {
        let l = ledger(10 * GIB, 0);
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &PeeringPolicy::default());
        assert_eq!(v, PeeringVerdict::TooSmall);
    }

    #[test]
    fn boundary_asymmetry_accepted() {
        // Exactly 25% asymmetry with default policy.
        let l = ledger(4 * GIB, 3 * GIB);
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &PeeringPolicy::default());
        assert!(matches!(v, PeeringVerdict::RecommendPeering { .. }));
    }

    #[test]
    fn stricter_policy_rejects_same_flows() {
        let l = ledger(4 * GIB, 3 * GIB);
        let policy = PeeringPolicy {
            max_asymmetry: 0.1,
            ..Default::default()
        };
        let v = evaluate_peering(&l, OperatorId(1), OperatorId(2), &policy);
        assert!(matches!(v, PeeringVerdict::KeepTransit { .. }));
    }
}
