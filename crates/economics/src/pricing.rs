//! Path price formation.
//!
//! §3: "This cost model has the advantage of being adaptive to different
//! technical specifications of the underlying satellite links, since
//! awareness of hardware constraints of different satellites is inbuilt
//! into the cost of a specific routing path. Since RF-based ISLs are
//! likely to offer less bandwidth availability, these routes will likely
//! be cheaper … and will have looser QoS guarantees."
//!
//! The model: a hop's price per GiB is its amortized capex divided by the
//! traffic it can move over its amortization window, scaled by a
//! utilization surcharge (congested links price higher). Laser hops
//! amortize a $500k terminal but move orders of magnitude more bits, so
//! their *price per GiB* can undercut RF while their *absolute* price per
//! hop-hour is higher — exactly the "adaptive to hardware" property.

/// Link-technology pricing inputs for one hop.
#[derive(Debug, Clone, Copy)]
pub struct HopEconomics {
    /// Terminal capex allocated to this link (USD) — both ends.
    pub terminal_capex_usd: f64,
    /// Link capacity (bit/s).
    pub capacity_bps: f64,
    /// Amortization window (s) — terminal lifetime on orbit.
    pub amortization_s: f64,
    /// Expected long-run utilization in `(0, 1]` (links don't sell 100%).
    pub expected_utilization: f64,
}

impl HopEconomics {
    /// An RF ISL hop: two $45k transceivers, 5-year life.
    pub fn rf_isl(capacity_bps: f64) -> Self {
        Self {
            terminal_capex_usd: 2.0 * 45_000.0,
            capacity_bps,
            amortization_s: 5.0 * 365.25 * 86_400.0,
            expected_utilization: 0.3,
        }
    }

    /// A laser ISL hop: two $500k terminals (the paper's figure), 5-year
    /// life.
    pub fn laser_isl(capacity_bps: f64) -> Self {
        Self {
            terminal_capex_usd: 2.0 * 500_000.0,
            capacity_bps,
            amortization_s: 5.0 * 365.25 * 86_400.0,
            expected_utilization: 0.3,
        }
    }

    /// Break-even price (USD per GiB) at the expected utilization.
    pub fn base_price_usd_per_gib(&self) -> f64 {
        assert!(self.capacity_bps > 0.0, "capacity must be positive");
        assert!(
            self.expected_utilization > 0.0 && self.expected_utilization <= 1.0,
            "utilization must be in (0,1]"
        );
        assert!(self.amortization_s > 0.0, "amortization must be positive");
        let lifetime_bytes =
            self.capacity_bps * self.expected_utilization * self.amortization_s / 8.0;
        self.terminal_capex_usd / (lifetime_bytes / (1024.0 * 1024.0 * 1024.0))
    }

    /// Price with a congestion surcharge at instantaneous load
    /// `load_fraction`: price rises as `1/(1−load)` — scarce capacity
    /// prices higher, which is what §2.2's "higher tariffs on visitor
    /// traffic" under load amounts to.
    pub fn congested_price_usd_per_gib(&self, load_fraction: f64) -> f64 {
        assert!((0.0..1.0).contains(&load_fraction), "load must be in [0,1)");
        self.base_price_usd_per_gib() / (1.0 - load_fraction)
    }
}

/// Price (USD per GiB) of a full path: the sum of its hop prices.
pub fn path_price_usd_per_gib(hops: &[(HopEconomics, f64)]) -> f64 {
    hops.iter()
        .map(|(h, load)| h.congested_price_usd_per_gib(*load))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RF_BPS: f64 = 5.0e6; // S-band class
    const LASER_BPS: f64 = 10.0e9; // optical class

    #[test]
    fn laser_per_gib_undercuts_rf_despite_capex() {
        // $1M of laser terminals moving 10 Gbit/s beats $90k of RF moving
        // 5 Mbit/s on price per byte.
        let rf = HopEconomics::rf_isl(RF_BPS).base_price_usd_per_gib();
        let laser = HopEconomics::laser_isl(LASER_BPS).base_price_usd_per_gib();
        assert!(laser < rf / 10.0, "laser {laser} vs rf {rf}");
    }

    #[test]
    fn rf_hop_is_cheaper_in_absolute_capex() {
        // The paper's other side: the RF terminal itself is the accessible
        // investment.
        assert!(
            HopEconomics::rf_isl(RF_BPS).terminal_capex_usd
                < HopEconomics::laser_isl(LASER_BPS).terminal_capex_usd / 10.0
        );
    }

    #[test]
    fn congestion_raises_price() {
        let h = HopEconomics::rf_isl(RF_BPS);
        let idle = h.congested_price_usd_per_gib(0.0);
        let busy = h.congested_price_usd_per_gib(0.9);
        assert!((busy / idle - 10.0).abs() < 1e-9);
    }

    #[test]
    fn path_price_sums_hops() {
        let h = HopEconomics::rf_isl(RF_BPS);
        let one = path_price_usd_per_gib(&[(h, 0.0)]);
        let three = path_price_usd_per_gib(&[(h, 0.0), (h, 0.0), (h, 0.0)]);
        assert!((three / one - 3.0).abs() < 1e-9);
    }

    #[test]
    fn base_price_is_positive_and_finite() {
        for h in [
            HopEconomics::rf_isl(RF_BPS),
            HopEconomics::laser_isl(LASER_BPS),
        ] {
            let p = h.base_price_usd_per_gib();
            assert!(p.is_finite() && p > 0.0, "price {p}");
        }
    }

    #[test]
    fn rf_price_is_dollars_not_micros() {
        // Sanity on magnitude: an S-band ISL at 30% utilization for 5
        // years moves ~29k GiB; $90k capex → an order of $3/GiB.
        let p = HopEconomics::rf_isl(RF_BPS).base_price_usd_per_gib();
        assert!((0.5..20.0).contains(&p), "RF price {p} USD/GiB");
    }

    #[test]
    #[should_panic(expected = "load must be in [0,1)")]
    fn saturated_load_panics() {
        HopEconomics::rf_isl(RF_BPS).congested_price_usd_per_gib(1.0);
    }
}
