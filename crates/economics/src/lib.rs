//! # openspace-economics
//!
//! §3 of the paper ("Cost Models") as executable machinery:
//!
//! * [`ledger`] — per-operator traffic ledgers built from the signed
//!   accounting records in `openspace-protocol`, with bilateral
//!   cross-verification (the "easily cross-verifiable account").
//! * [`settlement`] — bilateral price books and net settlement positions
//!   ("precise monetary amounts … left to agreements between individual
//!   ISPs, much like in BGP").
//! * [`peering`] — the symmetric-flows ⇒ peer rule.
//! * [`capex`] — fleet costs: hardware, launch, and the FCC's $12,145
//!   small-sat fee; the entry-barrier comparison between monolithic and
//!   federated deployment.
//! * [`pricing`] — hardware-aware path pricing: RF hops cheap in capex,
//!   laser hops cheap per byte, congestion surcharges under load.
//! * [`incentives`] — §5(4)'s open problem: exact Shapley-value revenue
//!   sharing and the join-or-go-alone rationality test.

//! ## Example
//!
//! ```
//! use openspace_economics::prelude::*;
//! use openspace_phy::hardware::SatelliteClass;
//!
//! // The §1 entry-barrier argument in two lines: a six-member
//! // federation divides the up-front cost of a 66-satellite
//! // constellation by six.
//! let b = entry_barrier(SatelliteClass::SmallSat, 66, 6, &LaunchPricing::rideshare());
//! assert!(b.monolithic_usd / b.federated_usd > 5.5);
//! ```

pub mod capex;
pub mod incentives;
pub mod ledger;
pub mod peering;
pub mod pricing;
pub mod settlement;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::capex::{
        entry_barrier, fleet_cost_usd, satellite_cost, EntryBarrier, LaunchPricing, SatelliteCost,
        FCC_SMALLSAT_FEE_USD,
    };
    pub use crate::incentives::{collaboration_surplus, shapley_shares, Share};
    pub use crate::ledger::{reconcile, BillingKey, Dispute, Reconciliation, TrafficLedger};
    pub use crate::peering::{evaluate_peering, PeeringPolicy, PeeringVerdict};
    pub use crate::pricing::{path_price_usd_per_gib, HopEconomics};
    pub use crate::settlement::{PriceBook, SettlementMatrix};
}
