//! Settlement: turning reconciled byte counts into money.
//!
//! §3: "The precise monetary amounts that ISPs charge to carry said
//! traffic is left to agreements between individual ISPs in OpenSpace,
//! much like in BGP." A [`PriceBook`] holds those bilateral rates; a
//! [`SettlementMatrix`] nets invoices into per-operator positions.

use crate::ledger::TrafficLedger;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

/// Bilateral transit prices (USD per GiB carried).
#[derive(Debug, Clone, Default)]
pub struct PriceBook {
    /// `(carrier, origin) → USD/GiB` the carrier charges that origin.
    rates: BTreeMap<(OperatorId, OperatorId), f64>,
    /// Rate used when no bilateral agreement exists.
    pub default_rate_usd_per_gib: f64,
}

impl PriceBook {
    /// A price book with the given default rate.
    pub fn new(default_rate_usd_per_gib: f64) -> Self {
        assert!(default_rate_usd_per_gib >= 0.0, "negative default rate");
        Self {
            rates: BTreeMap::new(),
            default_rate_usd_per_gib,
        }
    }

    /// Set the rate `carrier` charges `origin`.
    pub fn set_rate(&mut self, carrier: OperatorId, origin: OperatorId, usd_per_gib: f64) {
        assert!(usd_per_gib >= 0.0, "negative rate");
        self.rates.insert((carrier, origin), usd_per_gib);
    }

    /// The rate `carrier` charges `origin`.
    pub fn rate(&self, carrier: OperatorId, origin: OperatorId) -> f64 {
        self.rates
            .get(&(carrier, origin))
            .copied()
            .unwrap_or(self.default_rate_usd_per_gib)
    }
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Net settlement positions computed from a set of ledgers.
#[derive(Debug, Clone, Default)]
pub struct SettlementMatrix {
    /// `(payer, payee) → USD owed`.
    invoices: BTreeMap<(OperatorId, OperatorId), f64>,
}

impl SettlementMatrix {
    /// Build the matrix from the *agreed* traffic in each operator's
    /// ledger. Uses the carrier's own ledger as the billing source (the
    /// cross-verification step in [`crate::ledger::reconcile`] is what
    /// makes that trustworthy).
    pub fn from_ledgers(ledgers: &BTreeMap<OperatorId, TrafficLedger>, prices: &PriceBook) -> Self {
        Self::from_ledgers_recorded(ledgers, prices, &mut openspace_telemetry::NullRecorder)
    }

    /// [`from_ledgers`](Self::from_ledgers) with telemetry: counts the
    /// billable ledger items it turned into invoice lines
    /// (`settlement.records_settled`) and reports the gross invoiced
    /// volume across all operator pairs (`settlement.gross_usd` gauge).
    pub fn from_ledgers_recorded(
        ledgers: &BTreeMap<OperatorId, TrafficLedger>,
        prices: &PriceBook,
        rec: &mut dyn openspace_telemetry::Recorder,
    ) -> Self {
        let mut m = Self::default();
        let mut settled = 0u64;
        let mut gross = 0.0f64;
        for (&carrier, ledger) in ledgers {
            for (key, &bytes) in ledger.iter() {
                // Bill only items where this ledger's owner is the carrier
                // and someone else pays.
                if key.carrier == carrier && key.origin != carrier {
                    let usd = bytes as f64 / GIB * prices.rate(carrier, key.origin);
                    *m.invoices.entry((key.origin, carrier)).or_insert(0.0) += usd;
                    settled += 1;
                    gross += usd;
                }
            }
        }
        rec.add("settlement.records_settled", settled);
        rec.gauge("settlement.gross_usd", gross);
        m
    }

    /// Gross amount `payer` owes `payee`.
    pub fn owed(&self, payer: OperatorId, payee: OperatorId) -> f64 {
        self.invoices.get(&(payer, payee)).copied().unwrap_or(0.0)
    }

    /// Net bilateral flow: positive means `a` pays `b` after netting.
    pub fn net_between(&self, a: OperatorId, b: OperatorId) -> f64 {
        self.owed(a, b) - self.owed(b, a)
    }

    /// Net position of one operator across the federation: positive means
    /// it receives money overall.
    pub fn net_position(&self, op: OperatorId) -> f64 {
        let mut net = 0.0;
        for (&(payer, payee), &usd) in &self.invoices {
            if payee == op {
                net += usd;
            }
            if payer == op {
                net -= usd;
            }
        }
        net
    }

    /// All operators appearing in the matrix.
    pub fn operators(&self) -> Vec<OperatorId> {
        let mut ops: Vec<OperatorId> = self.invoices.keys().flat_map(|&(a, b)| [a, b]).collect();
        ops.sort_unstable();
        ops.dedup();
        ops
    }

    /// Sum of net positions — must be zero (money is conserved).
    pub fn total_imbalance(&self) -> f64 {
        self.operators()
            .iter()
            .map(|&op| self.net_position(op))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::BillingKey;

    fn key(flow: u64, origin: u32, carrier: u32) -> BillingKey {
        BillingKey {
            flow_id: flow,
            origin: OperatorId(origin),
            carrier: OperatorId(carrier),
            interval_start_ms: 0,
        }
    }

    fn ledgers_two_ops() -> BTreeMap<OperatorId, TrafficLedger> {
        let mut l1 = TrafficLedger::new();
        let mut l2 = TrafficLedger::new();
        // Op 2 carried 2 GiB of op 1's traffic.
        l2.record_raw(key(1, 1, 2), 2 * 1024 * 1024 * 1024);
        // Op 1 carried 1 GiB of op 2's traffic.
        l1.record_raw(key(2, 2, 1), 1024 * 1024 * 1024);
        BTreeMap::from([(OperatorId(1), l1), (OperatorId(2), l2)])
    }

    #[test]
    fn invoices_follow_carrier_ledgers() {
        let prices = PriceBook::new(10.0);
        let m = SettlementMatrix::from_ledgers(&ledgers_two_ops(), &prices);
        assert!((m.owed(OperatorId(1), OperatorId(2)) - 20.0).abs() < 1e-9);
        assert!((m.owed(OperatorId(2), OperatorId(1)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn netting_works() {
        let prices = PriceBook::new(10.0);
        let m = SettlementMatrix::from_ledgers(&ledgers_two_ops(), &prices);
        assert!((m.net_between(OperatorId(1), OperatorId(2)) - 10.0).abs() < 1e-9);
        assert!((m.net_position(OperatorId(1)) + 10.0).abs() < 1e-9);
        assert!((m.net_position(OperatorId(2)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn money_is_conserved() {
        let prices = PriceBook::new(7.5);
        let m = SettlementMatrix::from_ledgers(&ledgers_two_ops(), &prices);
        assert!(m.total_imbalance().abs() < 1e-9);
    }

    #[test]
    fn bilateral_rates_override_default() {
        let mut prices = PriceBook::new(10.0);
        prices.set_rate(OperatorId(2), OperatorId(1), 3.0); // discount deal
        let m = SettlementMatrix::from_ledgers(&ledgers_two_ops(), &prices);
        assert!((m.owed(OperatorId(1), OperatorId(2)) - 6.0).abs() < 1e-9);
        assert!((m.owed(OperatorId(2), OperatorId(1)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn own_traffic_not_billed() {
        let mut l1 = TrafficLedger::new();
        l1.record_raw(key(5, 1, 1), GIB as u64); // op 1 carrying its own flow
        let ledgers = BTreeMap::from([(OperatorId(1), l1)]);
        let m = SettlementMatrix::from_ledgers(&ledgers, &PriceBook::new(10.0));
        assert!(m.operators().is_empty());
    }

    #[test]
    fn rf_cheaper_than_laser_rates_express_paper_claim() {
        // §3: RF routes are cheaper with looser QoS. Encode as rates and
        // check the arithmetic holds through settlement.
        let mut prices = PriceBook::new(0.0);
        prices.set_rate(OperatorId(2), OperatorId(1), 2.0); // RF carrier
        prices.set_rate(OperatorId(3), OperatorId(1), 8.0); // laser carrier
        let mut l2 = TrafficLedger::new();
        let mut l3 = TrafficLedger::new();
        l2.record_raw(key(1, 1, 2), GIB as u64);
        l3.record_raw(key(2, 1, 3), GIB as u64);
        let ledgers = BTreeMap::from([(OperatorId(2), l2), (OperatorId(3), l3)]);
        let m = SettlementMatrix::from_ledgers(&ledgers, &prices);
        assert!(m.owed(OperatorId(1), OperatorId(3)) > m.owed(OperatorId(1), OperatorId(2)) * 3.0);
    }

    #[test]
    #[should_panic(expected = "negative rate")]
    fn negative_rate_panics() {
        PriceBook::new(1.0).set_rate(OperatorId(1), OperatorId(2), -1.0);
    }

    #[test]
    fn recorded_settlement_counts_items_and_gross() {
        use openspace_telemetry::MemoryRecorder;
        let prices = PriceBook::new(10.0);
        let ledgers = ledgers_two_ops();
        let plain = SettlementMatrix::from_ledgers(&ledgers, &prices);
        let mut rec = MemoryRecorder::new();
        let recorded = SettlementMatrix::from_ledgers_recorded(&ledgers, &prices, &mut rec);
        assert_eq!(
            plain.owed(OperatorId(1), OperatorId(2)).to_bits(),
            recorded.owed(OperatorId(1), OperatorId(2)).to_bits()
        );
        assert_eq!(rec.counter("settlement.records_settled"), 2);
        // 2 GiB @ 10 + 1 GiB @ 10 = 30 USD gross.
        assert!((rec.gauge_value("settlement.gross_usd").unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_metrics_report_records_and_bytes() {
        use openspace_telemetry::MemoryRecorder;
        let mut l = TrafficLedger::new();
        l.record_raw(key(1, 1, 2), 100);
        l.record_raw(key(2, 2, 1), 50);
        let mut rec = MemoryRecorder::new();
        l.metrics_into(&mut rec);
        assert_eq!(rec.counter("ledger.records"), 2);
        assert_eq!(rec.counter("ledger.bytes"), 150);
    }
}
