//! Collaboration incentives: who gains what from federating.
//!
//! §5(4): "relatively larger providers may find that collaborating with
//! smaller providers is not a net benefit for them, and it is worth
//! expanding the cost model presented in Section 3 to include an
//! incentive for this collaboration."
//!
//! This module implements the canonical answer from cooperative game
//! theory: treat the federation as a coalitional game whose value
//! function is whatever the members monetize (covered service time,
//! deliverable capacity, revenue), and split the coalition's value by
//! **Shapley value** — the unique efficient, symmetric, dummy-free,
//! additive division. A member then joins iff its Shapley share exceeds
//! its standalone value, which is exactly the incentive test the paper
//! asks for.
//!
//! Exact computation enumerates all `2^n` coalitions; federations here
//! are tens of members at most, and the implementation guards `n ≤ 20`.

use openspace_protocol::types::OperatorId;

/// One member's computed share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Share {
    /// The member.
    pub member: OperatorId,
    /// Its Shapley value (same unit as the value function).
    pub shapley_value: f64,
    /// Its standalone (solo) value `v({i})`.
    pub standalone_value: f64,
}

impl Share {
    /// The §5(4) incentive test: joining beats going alone.
    pub fn joining_is_rational(&self) -> bool {
        self.shapley_value >= self.standalone_value - 1e-12
    }

    /// Gain from joining (may be negative if joining is irrational).
    pub fn collaboration_gain(&self) -> f64 {
        self.shapley_value - self.standalone_value
    }
}

/// Exact Shapley values of the game `(members, value)`.
///
/// `value` maps a coalition (given as a bitmask over `members` indices)
/// to its worth; it is called for every one of the `2^n` masks, so memoize
/// upstream if evaluation is expensive. `value(0)` is taken as 0 by
/// convention regardless of the closure.
///
/// # Panics
/// Panics if `members.len() > 20` (2^20 coalition evaluations is the
/// sanity ceiling) or if `members` is empty.
pub fn shapley_shares(members: &[OperatorId], mut value: impl FnMut(u32) -> f64) -> Vec<Share> {
    let n = members.len();
    assert!(n >= 1, "need at least one member");
    assert!(n <= 20, "exact Shapley capped at 20 members, got {n}");

    // Precompute all coalition values.
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut v = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        v[mask as usize] = value(mask);
    }

    // Factorials up to n.
    let mut fact = vec![1.0f64; n + 1];
    for k in 1..=n {
        fact[k] = fact[k - 1] * k as f64;
    }

    let mut shares = Vec::with_capacity(n);
    for (i, &member) in members.iter().enumerate() {
        let bit = 1u32 << i;
        let mut phi = 0.0;
        // Sum over coalitions S not containing i.
        let mut s: u32 = 0;
        loop {
            if s & bit == 0 {
                let size = s.count_ones() as usize;
                let weight = fact[size] * fact[n - size - 1] / fact[n];
                phi += weight * (v[(s | bit) as usize] - v[s as usize]);
            }
            if s == full {
                break;
            }
            s += 1;
        }
        shares.push(Share {
            member,
            shapley_value: phi,
            standalone_value: v[bit as usize],
        });
    }
    shares
}

/// The collaboration surplus: coalition value minus the sum of solo
/// values — what federation *creates*, to be divided.
pub fn collaboration_surplus(shares: &[Share], grand_value: f64) -> f64 {
    grand_value - shares.iter().map(|s| s.standalone_value).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(n: usize) -> Vec<OperatorId> {
        (1..=n as u32).map(OperatorId).collect()
    }

    #[test]
    fn shares_are_efficient() {
        // Shapley values must sum to the grand-coalition value.
        let members = ops(4);
        let value = |mask: u32| (mask.count_ones() as f64).powf(1.5); // superadditive
        let shares = shapley_shares(&members, value);
        let total: f64 = shares.iter().map(|s| s.shapley_value).sum();
        assert!((total - 8.0).abs() < 1e-9, "sum {total}, v(N) = 4^1.5 = 8");
    }

    #[test]
    fn symmetric_members_get_equal_shares() {
        let members = ops(5);
        let shares = shapley_shares(&members, |mask| mask.count_ones() as f64 * 2.0);
        for s in &shares {
            assert!((s.shapley_value - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dummy_member_gets_nothing() {
        // Member 3 (bit 2) contributes nothing to any coalition.
        let members = ops(3);
        let value = |mask: u32| (mask & 0b011).count_ones() as f64;
        let shares = shapley_shares(&members, value);
        assert!((shares[2].shapley_value).abs() < 1e-12);
        assert!(shares[2].joining_is_rational(), "0 >= 0 is still rational");
    }

    #[test]
    fn glove_game_known_solution() {
        // Classic: member 1 owns a left glove, members 2 and 3 right
        // gloves; a pair is worth 1. Shapley: (2/3, 1/6, 1/6).
        let members = ops(3);
        let value = |mask: u32| {
            let left = (mask & 1 != 0) as u32;
            let right = (mask >> 1).count_ones();
            left.min(right) as f64
        };
        let shares = shapley_shares(&members, value);
        assert!((shares[0].shapley_value - 2.0 / 3.0).abs() < 1e-12);
        assert!((shares[1].shapley_value - 1.0 / 6.0).abs() < 1e-12);
        assert!((shares[2].shapley_value - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn superadditive_game_makes_joining_rational_for_all() {
        // Continuous-coverage revenue: patchwork (solo) coverage sells
        // poorly, continuous coverage superlinearly well — v(S) ∝ |S|².
        let members = ops(4);
        let value = |mask: u32| 0.1 * (mask.count_ones() as f64).powi(2);
        let shares = shapley_shares(&members, value);
        for s in &shares {
            assert!(
                s.joining_is_rational(),
                "{}: shapley {} < solo {}",
                s.member,
                s.shapley_value,
                s.standalone_value
            );
            assert!(s.collaboration_gain() > 0.0);
        }
    }

    #[test]
    fn subadditive_coverage_game_shows_the_papers_worry() {
        // Pure coverage-fraction value (overlapping footprints): the
        // union is worth less than the sum of solos, so joining is
        // *irrational* without a side payment — precisely §5(4)'s point
        // that the cost model needs an explicit collaboration incentive.
        let members = ops(4);
        let value = |mask: u32| 1.0 - 0.5f64.powi(mask.count_ones() as i32);
        let shares = shapley_shares(&members, value);
        for s in &shares {
            assert!(
                !s.joining_is_rational() || s.collaboration_gain().abs() < 1e-9,
                "{}: coverage-only value cannot reward joining",
                s.member
            );
        }
        assert!(collaboration_surplus(&shares, 0.9375) < 0.0);
    }

    #[test]
    fn big_provider_incentive_question() {
        // §5(4)'s worry made concrete: one big provider already has 90%
        // of the value; three small ones add little. Joining is still
        // weakly rational under Shapley (it never pays less than the
        // marginal-contribution average), but the gain is small — the
        // quantitative version of "may find collaborating is not a net
        // benefit".
        let members = ops(4);
        let value = |mask: u32| {
            let big = mask & 1 != 0;
            let smalls = (mask >> 1).count_ones() as f64;
            if big {
                0.9 + 0.03 * smalls
            } else {
                0.02 * smalls
            }
        };
        let shares = shapley_shares(&members, value);
        assert!(shares[0].joining_is_rational());
        // Relative gains: the big provider improves ~2% on its solo value
        // while each small provider improves ~25% — joining is worth far
        // less to the incumbent, which is the paper's concern.
        let big_rel = shares[0].collaboration_gain() / shares[0].standalone_value;
        let small_rel = shares[1].collaboration_gain() / shares[1].standalone_value;
        assert!(big_rel < 0.05, "big relative gain {big_rel}");
        assert!(small_rel > 0.1, "small relative gain {small_rel}");
    }

    #[test]
    fn surplus_is_grand_minus_solos() {
        let members = ops(3);
        let value = |mask: u32| match mask.count_ones() {
            1 => 1.0,
            2 => 3.0,
            3 => 6.0,
            _ => 0.0,
        };
        let shares = shapley_shares(&members, value);
        assert!((collaboration_surplus(&shares, 6.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capped at 20")]
    fn too_many_members_panics() {
        let members = ops(21);
        shapley_shares(&members, |_| 0.0);
    }
}
