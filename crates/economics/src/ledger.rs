//! Per-operator traffic ledgers and cross-verification.
//!
//! §3: "The volume of traffic along this path is tracked by all parties
//! involved to create an easily cross-verifiable account of the extent to
//! which any given ISP's traffic was carried by the rest of the network."
//!
//! Implementation: each operator keeps a [`TrafficLedger`] holding the
//! signed [`AccountingRecord`]s it emitted (as a carrier) and observed
//! (as the origin whose home ISP sees the full route, per §3's
//! "full knowledge and control of the topology of routes"). Reconciling
//! the ledgers of two operators flags every flow-interval on which their
//! byte counts disagree.

use openspace_protocol::accounting::AccountingRecord;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

/// Key identifying one billable item: a flow carried by one operator in
/// one reporting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BillingKey {
    /// The flow.
    pub flow_id: u64,
    /// Who pays (origin operator).
    pub origin: OperatorId,
    /// Who carried (carrier operator).
    pub carrier: OperatorId,
    /// Interval start (ms).
    pub interval_start_ms: u64,
}

impl BillingKey {
    /// Build a key from raw parts — for callers (demand-weighted
    /// ledgers, synthetic workloads) that bill traffic which never
    /// passed through a signed [`AccountingRecord`].
    pub fn new(
        flow_id: u64,
        origin: OperatorId,
        carrier: OperatorId,
        interval_start_ms: u64,
    ) -> Self {
        Self {
            flow_id,
            origin,
            carrier,
            interval_start_ms,
        }
    }

    /// Extract the key from a record.
    pub fn of(rec: &AccountingRecord) -> Self {
        Self {
            flow_id: rec.flow_id,
            origin: rec.origin_operator,
            carrier: rec.carrier_operator,
            interval_start_ms: rec.interval_start_ms,
        }
    }
}

/// One operator's view of who carried what.
#[derive(Debug, Clone, Default)]
pub struct TrafficLedger {
    entries: BTreeMap<BillingKey, u64>,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or accumulate) a record's byte count.
    pub fn record(&mut self, rec: &AccountingRecord) {
        *self.entries.entry(BillingKey::of(rec)).or_insert(0) += rec.bytes_carried;
    }

    /// Record raw fields without a signed record (the origin side logs
    /// from its own route knowledge).
    pub fn record_raw(&mut self, key: BillingKey, bytes: u64) {
        *self.entries.entry(key).or_insert(0) += bytes;
    }

    /// Total bytes this ledger attributes to `carrier` carrying traffic
    /// that originated at `origin`.
    pub fn bytes_carried(&self, origin: OperatorId, carrier: OperatorId) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.origin == origin && k.carrier == carrier)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Number of billable items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&BillingKey, &u64)> {
        self.entries.iter()
    }

    /// Dump this ledger's aggregates into a telemetry recorder:
    /// `ledger.records` (billable items) and `ledger.bytes` (total bytes
    /// across all items) counters.
    pub fn metrics_into(&self, rec: &mut dyn openspace_telemetry::Recorder) {
        rec.add("ledger.records", self.entries.len() as u64);
        rec.add("ledger.bytes", self.entries.values().sum());
    }
}

/// One disagreement found by reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispute {
    /// The disputed item.
    pub key: BillingKey,
    /// Bytes per the first ledger (0 when absent).
    pub bytes_a: u64,
    /// Bytes per the second ledger (0 when absent).
    pub bytes_b: u64,
}

/// Reconciliation outcome between two ledgers.
#[derive(Debug, Clone, Default)]
pub struct Reconciliation {
    /// Items both ledgers agree on.
    pub agreed: usize,
    /// Items where the counts differ (including one-sided entries).
    pub disputes: Vec<Dispute>,
    /// Total agreed bytes.
    pub agreed_bytes: u64,
}

impl Reconciliation {
    /// Whether the ledgers match exactly.
    pub fn is_clean(&self) -> bool {
        self.disputes.is_empty()
    }
}

/// Cross-verify two ledgers over the billing items involving the pair
/// `(origin, carrier)` in either direction. Items involving third parties
/// are ignored — each bilateral relationship reconciles independently.
pub fn reconcile(
    a: &TrafficLedger,
    b: &TrafficLedger,
    op_a: OperatorId,
    op_b: OperatorId,
) -> Reconciliation {
    let relevant = |k: &BillingKey| {
        (k.origin == op_a && k.carrier == op_b) || (k.origin == op_b && k.carrier == op_a)
    };
    let mut keys: Vec<BillingKey> = a
        .entries
        .keys()
        .chain(b.entries.keys())
        .filter(|k| relevant(k))
        .copied()
        .collect();
    keys.sort_unstable();
    keys.dedup();

    let mut out = Reconciliation::default();
    for k in keys {
        let va = a.entries.get(&k).copied().unwrap_or(0);
        let vb = b.entries.get(&k).copied().unwrap_or(0);
        if va == vb {
            out.agreed += 1;
            out.agreed_bytes += va;
        } else {
            out.disputes.push(Dispute {
                key: k,
                bytes_a: va,
                bytes_b: vb,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_protocol::crypto::SharedSecret;
    use openspace_protocol::types::SatelliteId;

    fn rec(flow: u64, origin: u32, carrier: u32, bytes: u64, start: u64) -> AccountingRecord {
        AccountingRecord::create(
            flow,
            OperatorId(origin),
            OperatorId(carrier),
            SatelliteId(1),
            bytes,
            start,
            start + 60_000,
            &SharedSecret::derive(carrier as u64, "carrier"),
        )
    }

    #[test]
    fn record_accumulates_same_key() {
        let mut l = TrafficLedger::new();
        l.record(&rec(1, 1, 2, 100, 0));
        l.record(&rec(1, 1, 2, 50, 0));
        assert_eq!(l.bytes_carried(OperatorId(1), OperatorId(2)), 150);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn different_intervals_are_separate_items() {
        let mut l = TrafficLedger::new();
        l.record(&rec(1, 1, 2, 100, 0));
        l.record(&rec(1, 1, 2, 100, 60_000));
        assert_eq!(l.len(), 2);
        assert_eq!(l.bytes_carried(OperatorId(1), OperatorId(2)), 200);
    }

    #[test]
    fn matching_ledgers_reconcile_clean() {
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        for l in [&mut a, &mut b] {
            l.record(&rec(1, 1, 2, 100, 0));
            l.record(&rec(2, 1, 2, 300, 0));
        }
        let r = reconcile(&a, &b, OperatorId(1), OperatorId(2));
        assert!(r.is_clean());
        assert_eq!(r.agreed, 2);
        assert_eq!(r.agreed_bytes, 400);
    }

    #[test]
    fn mismatched_bytes_flagged() {
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        a.record(&rec(1, 1, 2, 100, 0));
        b.record(&rec(1, 1, 2, 120, 0)); // carrier claims more
        let r = reconcile(&a, &b, OperatorId(1), OperatorId(2));
        assert_eq!(r.disputes.len(), 1);
        assert_eq!(r.disputes[0].bytes_a, 100);
        assert_eq!(r.disputes[0].bytes_b, 120);
    }

    #[test]
    fn one_sided_entry_is_a_dispute() {
        let mut a = TrafficLedger::new();
        let b = TrafficLedger::new();
        a.record(&rec(9, 2, 1, 55, 0));
        let r = reconcile(&a, &b, OperatorId(1), OperatorId(2));
        assert_eq!(r.disputes.len(), 1);
        assert_eq!(r.disputes[0].bytes_b, 0);
    }

    #[test]
    fn third_party_items_ignored() {
        let mut a = TrafficLedger::new();
        let b = TrafficLedger::new();
        a.record(&rec(1, 1, 3, 100, 0)); // involves op 3, not op 2
        let r = reconcile(&a, &b, OperatorId(1), OperatorId(2));
        assert!(r.is_clean());
        assert_eq!(r.agreed, 0);
    }

    #[test]
    fn reconcile_covers_both_directions() {
        let mut a = TrafficLedger::new();
        let mut b = TrafficLedger::new();
        // 1's traffic carried by 2, and 2's traffic carried by 1.
        for l in [&mut a, &mut b] {
            l.record(&rec(1, 1, 2, 100, 0));
            l.record(&rec(2, 2, 1, 80, 0));
        }
        let r = reconcile(&a, &b, OperatorId(1), OperatorId(2));
        assert_eq!(r.agreed, 2);
        assert_eq!(r.agreed_bytes, 180);
    }
}
