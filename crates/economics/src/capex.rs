//! Capital-expenditure model.
//!
//! §3: "Manufacturing and launching satellites poses a significant cost,
//! due to cost of materials, the expertise required for designing and
//! building hardware and software systems, paying for licensing
//! requirements, and launching and maneuvering satellites into the
//! desired orbit. As an example of licensing requirements, the FCC has
//! proposed small satellite regulatory fees of about $12,145."
//!
//! The model prices an operator's fleet from the hardware catalogue in
//! `openspace-phy`, a per-kilogram launch rate, and the FCC fee — the
//! numbers behind the paper's barrier-to-entry argument.

use openspace_phy::hardware::SatelliteClass;

/// The FCC small-satellite regulatory fee the paper quotes (USD).
pub const FCC_SMALLSAT_FEE_USD: f64 = 12_145.0;

/// Launch pricing.
#[derive(Debug, Clone, Copy)]
pub struct LaunchPricing {
    /// Price per kilogram to LEO (USD/kg).
    pub usd_per_kg: f64,
    /// Fixed integration cost per satellite (USD).
    pub integration_usd: f64,
}

impl LaunchPricing {
    /// Rideshare-class pricing (Falcon 9 Transporter era: ~$5,500/kg).
    pub fn rideshare() -> Self {
        Self {
            usd_per_kg: 5_500.0,
            integration_usd: 60_000.0,
        }
    }

    /// Dedicated small-launcher pricing (several times rideshare).
    pub fn dedicated_small_launcher() -> Self {
        Self {
            usd_per_kg: 25_000.0,
            integration_usd: 250_000.0,
        }
    }
}

/// Cost breakdown for one satellite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteCost {
    /// Bus + terminals (USD).
    pub hardware_usd: f64,
    /// Launch (USD).
    pub launch_usd: f64,
    /// Licensing (USD).
    pub licensing_usd: f64,
}

impl SatelliteCost {
    /// Total cost (USD).
    pub fn total_usd(&self) -> f64 {
        self.hardware_usd + self.launch_usd + self.licensing_usd
    }
}

/// Cost of building, launching, and licensing one satellite of `class`.
pub fn satellite_cost(class: SatelliteClass, launch: &LaunchPricing) -> SatelliteCost {
    SatelliteCost {
        hardware_usd: class.hardware_cost_usd(),
        launch_usd: class.total_mass_kg() * launch.usd_per_kg + launch.integration_usd,
        licensing_usd: FCC_SMALLSAT_FEE_USD,
    }
}

/// Up-front cost of a fleet of `n` identical satellites.
pub fn fleet_cost_usd(class: SatelliteClass, n: usize, launch: &LaunchPricing) -> f64 {
    satellite_cost(class, launch).total_usd() * n as f64
}

/// The paper's barrier-to-entry comparison: up-front capex of a full
/// monolithic constellation vs one operator's slice of a shared
/// federation.
#[derive(Debug, Clone, Copy)]
pub struct EntryBarrier {
    /// Cost of going it alone (full constellation).
    pub monolithic_usd: f64,
    /// Cost of contributing `share` of the federated constellation.
    pub federated_usd: f64,
}

/// Compare entry costs: a monolithic entrant must launch
/// `constellation_size` satellites; a federation member launches only its
/// share.
pub fn entry_barrier(
    class: SatelliteClass,
    constellation_size: usize,
    federation_members: usize,
    launch: &LaunchPricing,
) -> EntryBarrier {
    assert!(federation_members > 0, "federation needs members");
    let per_member = constellation_size.div_ceil(federation_members);
    EntryBarrier {
        monolithic_usd: fleet_cost_usd(class, constellation_size, launch),
        federated_usd: fleet_cost_usd(class, per_member, launch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_fee_matches_paper() {
        assert_eq!(FCC_SMALLSAT_FEE_USD, 12_145.0);
    }

    #[test]
    fn cubesat_is_cheapest_to_field() {
        let launch = LaunchPricing::rideshare();
        let cube = satellite_cost(SatelliteClass::CubeSat, &launch).total_usd();
        let small = satellite_cost(SatelliteClass::SmallSat, &launch).total_usd();
        let bus = satellite_cost(SatelliteClass::BroadbandBus, &launch).total_usd();
        assert!(cube < small);
        assert!(cube < bus);
    }

    #[test]
    fn cubesat_fleet_is_sub_million_per_sat() {
        // The accessibility premise: an RF-only cubesat costs well under
        // $1M fielded, vs $500k for a single laser terminal alone.
        let launch = LaunchPricing::rideshare();
        let c = satellite_cost(SatelliteClass::CubeSat, &launch);
        assert!(
            c.total_usd() < 1_000_000.0,
            "cubesat fielded cost {}",
            c.total_usd()
        );
    }

    #[test]
    fn launch_cost_scales_with_mass() {
        let launch = LaunchPricing::rideshare();
        let cube = satellite_cost(SatelliteClass::CubeSat, &launch);
        let bus = satellite_cost(SatelliteClass::BroadbandBus, &launch);
        assert!(bus.launch_usd > cube.launch_usd * 10.0);
    }

    #[test]
    fn federation_cuts_entry_cost_by_member_count() {
        let launch = LaunchPricing::rideshare();
        let b = entry_barrier(SatelliteClass::SmallSat, 66, 6, &launch);
        let ratio = b.monolithic_usd / b.federated_usd;
        assert!((ratio - 6.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn uneven_split_rounds_up() {
        let launch = LaunchPricing::rideshare();
        let b = entry_barrier(SatelliteClass::CubeSat, 66, 5, &launch);
        // 66/5 → 14 sats per member.
        let per_sat = satellite_cost(SatelliteClass::CubeSat, &launch).total_usd();
        assert!((b.federated_usd - 14.0 * per_sat).abs() < 1.0);
    }

    #[test]
    fn dedicated_launch_costs_more() {
        let ride = fleet_cost_usd(SatelliteClass::SmallSat, 10, &LaunchPricing::rideshare());
        let dedicated = fleet_cost_usd(
            SatelliteClass::SmallSat,
            10,
            &LaunchPricing::dedicated_small_launcher(),
        );
        assert!(dedicated > ride);
    }

    #[test]
    #[should_panic(expected = "federation needs members")]
    fn zero_members_panics() {
        entry_barrier(SatelliteClass::CubeSat, 10, 0, &LaunchPricing::rideshare());
    }
}
