//! Keyed integrity tags for the authentication protocol.
//!
//! **Substitution note (DESIGN.md):** the paper calls for RADIUS-style
//! authentication and home-ISP-issued certificates. A real deployment
//! would use HMAC-SHA-256 and real PKI; this simulation stack uses a
//! SipHash-flavored 128-bit keyed tag — deterministic, keyed, and
//! collision-resistant *enough to model the protocol flows* (who can
//! verify what, with which shared secret), while keeping the workspace
//! dependency-free. It is **not** cryptographically secure and says so.

/// A 128-bit shared secret between a user (or certificate issuer) and an
/// operator's AAA service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedSecret(pub [u8; 16]);

impl SharedSecret {
    /// Derive a deterministic per-entity secret from an id and a domain
    /// label — how the simulation provisions credentials.
    pub fn derive(entity_id: u64, domain: &str) -> Self {
        let mut state = [0x6a09_e667_f3bc_c908u64, 0xbb67_ae85_84ca_a73bu64];
        absorb(&mut state, entity_id);
        for chunk in domain.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            absorb(&mut state, u64::from_le_bytes(w));
        }
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&state[0].to_le_bytes());
        out[8..].copy_from_slice(&state[1].to_le_bytes());
        Self(out)
    }
}

fn mix(x: u64) -> u64 {
    // xorshift-multiply mixer (splitmix64 finalizer).
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn absorb(state: &mut [u64; 2], word: u64) {
    state[0] = mix(state[0] ^ word);
    state[1] = mix(state[1].wrapping_add(state[0]).rotate_left(17) ^ word);
}

/// A 128-bit message tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 16]);

/// Compute the keyed tag of `data` under `secret`.
pub fn compute_tag(secret: &SharedSecret, data: &[u8]) -> Tag {
    let k0 = u64::from_le_bytes(secret.0[..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(secret.0[8..].try_into().expect("8 bytes"));
    let mut state = [k0 ^ 0x736f_6d65_7073_6575, k1 ^ 0x646f_7261_6e64_6f6d];
    for chunk in data.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        absorb(&mut state, u64::from_le_bytes(w));
    }
    // Length strengthening prevents trivial extension collisions.
    absorb(&mut state, data.len() as u64);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&state[0].to_le_bytes());
    out[8..].copy_from_slice(&state[1].to_le_bytes());
    Tag(out)
}

/// Verify a tag in constant shape (full comparison, no early exit on the
/// first differing byte — a nod to timing hygiene, though nothing here is
/// secret-grade).
pub fn verify_tag(secret: &SharedSecret, data: &[u8], tag: &Tag) -> bool {
    let expect = compute_tag(secret, data);
    let mut diff = 0u8;
    for (a, b) in expect.0.iter().zip(tag.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_is_deterministic() {
        let s = SharedSecret::derive(7, "aaa");
        assert_eq!(compute_tag(&s, b"hello"), compute_tag(&s, b"hello"));
    }

    #[test]
    fn tag_depends_on_key() {
        let a = SharedSecret::derive(7, "aaa");
        let b = SharedSecret::derive(8, "aaa");
        assert_ne!(compute_tag(&a, b"hello"), compute_tag(&b, b"hello"));
    }

    #[test]
    fn tag_depends_on_domain() {
        let a = SharedSecret::derive(7, "aaa");
        let b = SharedSecret::derive(7, "bbb");
        assert_ne!(a, b);
    }

    #[test]
    fn tag_depends_on_message() {
        let s = SharedSecret::derive(7, "aaa");
        assert_ne!(compute_tag(&s, b"hello"), compute_tag(&s, b"hellp"));
    }

    #[test]
    fn length_matters() {
        let s = SharedSecret::derive(7, "aaa");
        // Same bytes with trailing zero padding must differ.
        assert_ne!(compute_tag(&s, b"ab"), compute_tag(&s, b"ab\0"));
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let s = SharedSecret::derive(1, "x");
        let t = compute_tag(&s, b"data");
        assert!(verify_tag(&s, b"data", &t));
        assert!(!verify_tag(&s, b"datb", &t));
        let wrong = SharedSecret::derive(2, "x");
        assert!(!verify_tag(&wrong, b"data", &t));
    }

    #[test]
    fn empty_message_tags_fine() {
        let s = SharedSecret::derive(1, "x");
        let t = compute_tag(&s, b"");
        assert!(verify_tag(&s, b"", &t));
    }
}
