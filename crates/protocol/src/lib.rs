//! # openspace-protocol
//!
//! The OpenSpace wire protocol: the "collection of interfaces and
//! standards" the paper's abstract promises, made concrete.
//!
//! * [`wire`] — smoltcp-style bounds-checked readers/writers, typed
//!   errors, Fletcher-32 framing checksum. Parsing never panics on
//!   attacker-controlled bytes.
//! * [`frame`] — the common message envelope and dispatch.
//! * [`types`] — satellite/operator/user identifiers and the capability
//!   bitmap (§2.1's "RF at a minimum, optionally laser").
//! * [`beacon`] — periodic presence beacons carrying orbital elements.
//! * [`pairing`] — the ISL pair request/response handshake plus the
//!   initiator state machine (`Idle → AwaitingResponse → Orienting →
//!   Established`).
//! * [`crypto`] — keyed 128-bit tags (a documented stand-in for HMAC).
//! * [`certificate`] — home-ISP-issued roaming certificates (§2.2).
//! * [`auth`] — RADIUS-like challenge flow: Access-Request over ISLs to
//!   the home AAA, Access-Accept carrying the certificate.
//! * [`handover`] — successor-prediction handover signaling that skips
//!   re-authentication (§2.2).
//! * [`neighbors`] — the receiver-side neighbour table fed by beacons:
//!   staleness expiry, capability tracking, pairing-candidate queries.
//! * [`accounting`] — signed, cross-verifiable traffic records (§3).
//!
//! ## Example: a beacon over the wire
//!
//! ```
//! use openspace_protocol::prelude::*;
//!
//! let beacon = Beacon {
//!     satellite: SatelliteId(7),
//!     operator: OperatorId(1),
//!     capabilities: Capabilities::rf_and_optical(),
//!     timestamp_ms: 0,
//!     semi_major_axis_m: 7.158e6,
//!     eccentricity: 0.0,
//!     inclination_rad: 1.508,
//!     raan_rad: 0.0,
//!     arg_perigee_rad: 0.0,
//!     mean_anomaly_rad: 0.0,
//! };
//! let frame = Frame { sender: 7, message: Message::Beacon(beacon) };
//! let bytes = frame.encode();
//! let decoded = Frame::decode(&bytes).unwrap();
//! assert_eq!(decoded, frame);
//! ```

pub mod accounting;
pub mod auth;
pub mod beacon;
pub mod certificate;
pub mod crypto;
pub mod frame;
pub mod handover;
pub mod neighbors;
pub mod pairing;
pub mod types;
pub mod wire;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::accounting::AccountingRecord;
    pub use crate::auth::{
        make_access_request, AccessAccept, AccessReject, AccessRequest, AuthFailure, AuthService,
    };
    pub use crate::beacon::Beacon;
    pub use crate::certificate::Certificate;
    pub use crate::crypto::{compute_tag, verify_tag, SharedSecret, Tag};
    pub use crate::frame::{Frame, Message};
    pub use crate::handover::{
        derive_session_token, validate_commit, HandoverCommit, HandoverPrepare,
    };
    pub use crate::neighbors::{Neighbor, NeighborTable};
    pub use crate::pairing::{
        decide_pair, PairFailure, PairRequest, PairResponse, PairVerdict, PairingMachine,
        PairingState, RejectReason,
    };
    pub use crate::types::{
        Capabilities, GroundStationId, LinkTechnology, OperatorId, SatelliteId, UserId,
    };
    pub use crate::wire::{Reader, WireError, Writer};
}
