//! Traffic accounting records.
//!
//! §3: "The volume of traffic along this path is tracked by all parties
//! involved to create an easily cross-verifiable account of the extent to
//! which any given ISP's traffic was carried by the rest of the network."
//!
//! Every hop that carries a flow segment emits one record; the economics
//! crate reconciles records across operators. The record is signed by the
//! reporting operator so disputes are attributable.

use crate::crypto::{compute_tag, verify_tag, SharedSecret, Tag};
use crate::types::{OperatorId, SatelliteId};
use crate::wire::{Reader, WireError, Writer};

/// One hop's account of traffic it carried for some flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountingRecord {
    /// Flow identifier (stable along the path).
    pub flow_id: u64,
    /// The operator whose user originated the flow (the payer).
    pub origin_operator: OperatorId,
    /// The operator reporting this record (the carrier of the hop).
    pub carrier_operator: OperatorId,
    /// The satellite or station that carried the hop.
    pub carrier_node: SatelliteId,
    /// Bytes carried in this reporting interval.
    pub bytes_carried: u64,
    /// Interval start (ms since epoch).
    pub interval_start_ms: u64,
    /// Interval end (ms since epoch).
    pub interval_end_ms: u64,
    /// Carrier's signature over the fields above.
    pub tag: Tag,
}

impl AccountingRecord {
    fn signed_bytes(&self) -> [u8; 44] {
        let mut b = [0u8; 44];
        b[..8].copy_from_slice(&self.flow_id.to_be_bytes());
        b[8..12].copy_from_slice(&self.origin_operator.0.to_be_bytes());
        b[12..16].copy_from_slice(&self.carrier_operator.0.to_be_bytes());
        b[16..24].copy_from_slice(&self.carrier_node.0.to_be_bytes());
        b[24..32].copy_from_slice(&self.bytes_carried.to_be_bytes());
        b[32..40].copy_from_slice(&self.interval_start_ms.to_be_bytes());
        b[40..44].copy_from_slice(
            &((self.interval_end_ms - self.interval_start_ms) as u32).to_be_bytes(),
        );
        b
    }

    /// Create and sign a record under the carrier's secret.
    ///
    /// # Panics
    /// Panics if the interval is inverted or longer than `u32::MAX` ms.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        flow_id: u64,
        origin_operator: OperatorId,
        carrier_operator: OperatorId,
        carrier_node: SatelliteId,
        bytes_carried: u64,
        interval_start_ms: u64,
        interval_end_ms: u64,
        carrier_secret: &SharedSecret,
    ) -> Self {
        assert!(interval_end_ms >= interval_start_ms, "inverted interval");
        assert!(
            interval_end_ms - interval_start_ms <= u32::MAX as u64,
            "interval too long"
        );
        let mut rec = Self {
            flow_id,
            origin_operator,
            carrier_operator,
            carrier_node,
            bytes_carried,
            interval_start_ms,
            interval_end_ms,
            tag: Tag([0; 16]),
        };
        rec.tag = compute_tag(carrier_secret, &rec.signed_bytes());
        rec
    }

    /// Verify the carrier's signature.
    pub fn verify(&self, carrier_secret: &SharedSecret) -> bool {
        verify_tag(carrier_secret, &self.signed_bytes(), &self.tag)
    }

    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.flow_id);
        w.u32(self.origin_operator.0);
        w.u32(self.carrier_operator.0);
        w.u64(self.carrier_node.0);
        w.u64(self.bytes_carried);
        w.u64(self.interval_start_ms);
        w.u64(self.interval_end_ms);
        w.bytes(&self.tag.0);
    }

    /// Parse and validate the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let flow_id = r.u64()?;
        let origin_operator = OperatorId(r.u32()?);
        let carrier_operator = OperatorId(r.u32()?);
        let carrier_node = SatelliteId(r.u64()?);
        let bytes_carried = r.u64()?;
        let interval_start_ms = r.u64()?;
        let interval_end_ms = r.u64()?;
        if interval_end_ms < interval_start_ms {
            return Err(WireError::IllegalField {
                field: "interval_end_ms",
            });
        }
        Ok(Self {
            flow_id,
            origin_operator,
            carrier_operator,
            carrier_node,
            bytes_carried,
            interval_start_ms,
            interval_end_ms,
            tag: Tag(r.bytes::<16>()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret() -> SharedSecret {
        SharedSecret::derive(2, "carrier")
    }

    fn rec() -> AccountingRecord {
        AccountingRecord::create(
            555,
            OperatorId(1),
            OperatorId(2),
            SatelliteId(42),
            1_000_000,
            0,
            60_000,
            &secret(),
        )
    }

    #[test]
    fn created_record_verifies() {
        assert!(rec().verify(&secret()));
    }

    #[test]
    fn tampered_bytes_fail() {
        let mut r = rec();
        r.bytes_carried += 1;
        assert!(!r.verify(&secret()));
    }

    #[test]
    fn tampered_origin_fails() {
        let mut r = rec();
        r.origin_operator = OperatorId(9);
        assert!(!r.verify(&secret()));
    }

    #[test]
    fn wire_round_trip_preserves_signature() {
        let r = rec();
        let mut w = Writer::default();
        r.encode_payload(&mut w);
        let b = w.into_bytes();
        let back = AccountingRecord::decode_payload(&mut Reader::new(&b)).unwrap();
        assert_eq!(back, r);
        assert!(back.verify(&secret()));
    }

    #[test]
    fn decode_rejects_inverted_interval() {
        let r = rec();
        let mut w = Writer::default();
        w.u64(r.flow_id);
        w.u32(r.origin_operator.0);
        w.u32(r.carrier_operator.0);
        w.u64(r.carrier_node.0);
        w.u64(r.bytes_carried);
        w.u64(100);
        w.u64(50);
        w.bytes(&r.tag.0);
        let b = w.into_bytes();
        assert!(AccountingRecord::decode_payload(&mut Reader::new(&b)).is_err());
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn create_rejects_inverted_interval() {
        AccountingRecord::create(
            1,
            OperatorId(1),
            OperatorId(2),
            SatelliteId(1),
            0,
            100,
            50,
            &secret(),
        );
    }
}
