//! Presence beacons.
//!
//! §2.2: "all OpenSpace satellites advertise their presence via
//! standardized periodic beacons that include orbital information. The
//! user can evaluate received beacons to identify which satellite is in
//! closest range, and request to associate with it."
//!
//! A beacon therefore carries the satellite's identity, its operator, a
//! capability bitmap, and its full orbital element set — enough for any
//! listener to propagate the sender's position forward in time.

use crate::types::{Capabilities, OperatorId, SatelliteId};
use crate::wire::{Reader, WireError, Writer};

/// A periodic presence beacon.
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    /// Broadcasting satellite.
    pub satellite: SatelliteId,
    /// Its owning operator.
    pub operator: OperatorId,
    /// Link technologies and services offered.
    pub capabilities: Capabilities,
    /// Transmission time (ms since constellation epoch).
    pub timestamp_ms: u64,
    /// Orbital elements at epoch: semi-major axis (m).
    pub semi_major_axis_m: f64,
    /// Eccentricity.
    pub eccentricity: f64,
    /// Inclination (rad).
    pub inclination_rad: f64,
    /// RAAN (rad).
    pub raan_rad: f64,
    /// Argument of perigee (rad).
    pub arg_perigee_rad: f64,
    /// Mean anomaly at the beacon timestamp (rad).
    pub mean_anomaly_rad: f64,
}

impl Beacon {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.satellite.0);
        w.u32(self.operator.0);
        w.u16(self.capabilities.to_bits());
        w.u64(self.timestamp_ms);
        w.f64(self.semi_major_axis_m);
        w.f64(self.eccentricity);
        w.f64(self.inclination_rad);
        w.f64(self.raan_rad);
        w.f64(self.arg_perigee_rad);
        w.f64(self.mean_anomaly_rad);
    }

    /// Parse the payload fields, validating physical ranges.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let satellite = SatelliteId(r.u64()?);
        let operator = OperatorId(r.u32()?);
        let capabilities = Capabilities::from_bits(r.u16()?);
        let timestamp_ms = r.u64()?;
        let semi_major_axis_m = r.f64()?;
        let eccentricity = r.f64()?;
        let inclination_rad = r.f64()?;
        let raan_rad = r.f64()?;
        let arg_perigee_rad = r.f64()?;
        let mean_anomaly_rad = r.f64()?;
        if !capabilities.has_rf() {
            // §2.1: RF support is the mandatory minimum; a beacon without
            // it is not a valid OpenSpace member.
            return Err(WireError::IllegalField {
                field: "capabilities.rf",
            });
        }
        if !(semi_major_axis_m.is_finite() && semi_major_axis_m > 0.0) {
            return Err(WireError::IllegalField {
                field: "semi_major_axis_m",
            });
        }
        if !(0.0..1.0).contains(&eccentricity) {
            return Err(WireError::IllegalField {
                field: "eccentricity",
            });
        }
        if !(0.0..=std::f64::consts::PI).contains(&inclination_rad) {
            return Err(WireError::IllegalField {
                field: "inclination_rad",
            });
        }
        Ok(Self {
            satellite,
            operator,
            capabilities,
            timestamp_ms,
            semi_major_axis_m,
            eccentricity,
            inclination_rad,
            raan_rad,
            arg_perigee_rad,
            mean_anomaly_rad,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Beacon {
        Beacon {
            satellite: SatelliteId(1),
            operator: OperatorId(2),
            capabilities: Capabilities::rf_only(),
            timestamp_ms: 1_000,
            semi_major_axis_m: 7.158e6,
            eccentricity: 0.001,
            inclination_rad: 1.5,
            raan_rad: 0.2,
            arg_perigee_rad: 0.1,
            mean_anomaly_rad: 3.0,
        }
    }

    fn round_trip(b: &Beacon) -> Result<Beacon, WireError> {
        let mut w = Writer::default();
        b.encode_payload(&mut w);
        let bytes = w.into_bytes();
        Beacon::decode_payload(&mut Reader::new(&bytes))
    }

    #[test]
    fn payload_round_trip() {
        let b = sample();
        assert_eq!(round_trip(&b).unwrap(), b);
    }

    #[test]
    fn rejects_beacon_without_rf() {
        let mut b = sample();
        b.capabilities = Capabilities::from_bits(0b10); // optical only
        assert!(matches!(
            round_trip(&b),
            Err(WireError::IllegalField {
                field: "capabilities.rf"
            })
        ));
    }

    #[test]
    fn rejects_hyperbolic_orbit() {
        let mut b = sample();
        b.eccentricity = 1.5;
        assert!(matches!(
            round_trip(&b),
            Err(WireError::IllegalField { .. })
        ));
    }

    #[test]
    fn rejects_negative_sma() {
        let mut b = sample();
        b.semi_major_axis_m = -1.0;
        assert!(round_trip(&b).is_err());
    }

    #[test]
    fn rejects_nan_sma() {
        let mut b = sample();
        b.semi_major_axis_m = f64::NAN;
        assert!(round_trip(&b).is_err());
    }

    #[test]
    fn rejects_bad_inclination() {
        let mut b = sample();
        b.inclination_rad = 4.0;
        assert!(round_trip(&b).is_err());
    }

    #[test]
    fn truncated_payload_is_error() {
        let mut w = Writer::default();
        sample().encode_payload(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            Beacon::decode_payload(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }
}
