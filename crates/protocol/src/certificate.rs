//! Roaming certificates.
//!
//! §2.2: "The user's home provider should assign the user a digital
//! certificate to inform other satellite providers that the user has been
//! authenticated by their home network."
//!
//! A certificate binds (user, home operator, validity window) under a tag
//! keyed by the home operator's federation secret. Any operator holding
//! that operator's federation secret (distributed at federation join) can
//! verify it without a round trip to the home AAA — which is exactly what
//! makes OpenSpace handovers cheap.

use crate::crypto::{compute_tag, verify_tag, SharedSecret, Tag};
use crate::types::{OperatorId, UserId};
use crate::wire::{Reader, WireError, Writer};

/// A roaming certificate issued by a user's home operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// The authenticated user.
    pub user: UserId,
    /// Issuing (home) operator.
    pub home_operator: OperatorId,
    /// Issue time (ms since epoch).
    pub issued_at_ms: u64,
    /// Expiry time (ms since epoch).
    pub expires_at_ms: u64,
    /// Keyed tag over the fields above.
    pub tag: Tag,
}

impl Certificate {
    /// Issue a certificate under the home operator's federation secret.
    ///
    /// # Panics
    /// Panics if the validity window is empty.
    pub fn issue(
        user: UserId,
        home_operator: OperatorId,
        issued_at_ms: u64,
        expires_at_ms: u64,
        issuer_secret: &SharedSecret,
    ) -> Self {
        assert!(expires_at_ms > issued_at_ms, "empty validity window");
        let tag = compute_tag(
            issuer_secret,
            &Self::signed_bytes(user, home_operator, issued_at_ms, expires_at_ms),
        );
        Self {
            user,
            home_operator,
            issued_at_ms,
            expires_at_ms,
            tag,
        }
    }

    fn signed_bytes(
        user: UserId,
        home_operator: OperatorId,
        issued_at_ms: u64,
        expires_at_ms: u64,
    ) -> [u8; 28] {
        let mut out = [0u8; 28];
        out[..8].copy_from_slice(&user.0.to_be_bytes());
        out[8..12].copy_from_slice(&home_operator.0.to_be_bytes());
        out[12..20].copy_from_slice(&issued_at_ms.to_be_bytes());
        out[20..28].copy_from_slice(&expires_at_ms.to_be_bytes());
        out
    }

    /// Verify integrity (tag) and temporal validity at `now_ms`.
    pub fn verify(&self, issuer_secret: &SharedSecret, now_ms: u64) -> bool {
        let bytes = Self::signed_bytes(
            self.user,
            self.home_operator,
            self.issued_at_ms,
            self.expires_at_ms,
        );
        verify_tag(issuer_secret, &bytes, &self.tag)
            && now_ms >= self.issued_at_ms
            && now_ms < self.expires_at_ms
    }

    /// Serialize (used inside AccessAccept payloads).
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.user.0);
        w.u32(self.home_operator.0);
        w.u64(self.issued_at_ms);
        w.u64(self.expires_at_ms);
        w.bytes(&self.tag.0);
    }

    /// Deserialize.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let user = UserId(r.u64()?);
        let home_operator = OperatorId(r.u32()?);
        let issued_at_ms = r.u64()?;
        let expires_at_ms = r.u64()?;
        if expires_at_ms <= issued_at_ms {
            return Err(WireError::IllegalField {
                field: "expires_at_ms",
            });
        }
        let tag = Tag(r.bytes::<16>()?);
        Ok(Self {
            user,
            home_operator,
            issued_at_ms,
            expires_at_ms,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret() -> SharedSecret {
        SharedSecret::derive(77, "federation")
    }

    fn cert() -> Certificate {
        Certificate::issue(UserId(5), OperatorId(3), 1_000, 61_000, &secret())
    }

    #[test]
    fn issued_certificate_verifies() {
        assert!(cert().verify(&secret(), 30_000));
    }

    #[test]
    fn expired_certificate_fails() {
        assert!(!cert().verify(&secret(), 61_000));
    }

    #[test]
    fn not_yet_valid_certificate_fails() {
        assert!(!cert().verify(&secret(), 999));
    }

    #[test]
    fn wrong_secret_fails() {
        let wrong = SharedSecret::derive(78, "federation");
        assert!(!cert().verify(&wrong, 30_000));
    }

    #[test]
    fn tampered_user_fails() {
        let mut c = cert();
        c.user = UserId(6);
        assert!(!c.verify(&secret(), 30_000));
    }

    #[test]
    fn tampered_expiry_fails() {
        let mut c = cert();
        c.expires_at_ms = u64::MAX;
        assert!(!c.verify(&secret(), 30_000));
    }

    #[test]
    fn wire_round_trip() {
        let c = cert();
        let mut w = Writer::default();
        c.encode(&mut w);
        let b = w.into_bytes();
        let back = Certificate::decode(&mut Reader::new(&b)).unwrap();
        assert_eq!(back, c);
        assert!(back.verify(&secret(), 30_000));
    }

    #[test]
    fn decode_rejects_inverted_window() {
        let c = cert();
        let mut w = Writer::default();
        w.u64(c.user.0);
        w.u32(c.home_operator.0);
        w.u64(100);
        w.u64(50); // expires before issue
        w.bytes(&c.tag.0);
        let b = w.into_bytes();
        assert!(Certificate::decode(&mut Reader::new(&b)).is_err());
    }

    #[test]
    #[should_panic(expected = "empty validity window")]
    fn empty_window_panics() {
        Certificate::issue(UserId(1), OperatorId(1), 10, 10, &secret());
    }
}
