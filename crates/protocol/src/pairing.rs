//! ISL pairing: the RF-bootstrap handshake of §2.1.
//!
//! "When a satellite receives a beacon from another satellite, it can
//! initiate pairing by broadcasting a pair request which contains its
//! technical specifications (for example whether optical links are
//! supported, and the exact position of its laser diodes) enabling laser
//! beamforming if the two satellites have the capability and available
//! bandwidth for optical links."
//!
//! This module carries the two wire messages plus the initiator-side
//! state machine: `Idle → AwaitingResponse → (Orienting →) Established`.

use crate::types::{Capabilities, LinkTechnology, SatelliteId};
use crate::wire::{Reader, WireError, Writer};

/// Pair request broadcast over the RF common channel.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRequest {
    /// Requesting satellite.
    pub requester: SatelliteId,
    /// Target satellite (from its beacon).
    pub target: SatelliteId,
    /// Requester's capabilities.
    pub capabilities: Capabilities,
    /// Azimuth of the requester's laser terminal in its body frame (rad);
    /// meaningful only when optical capability is present.
    pub laser_azimuth_rad: f64,
    /// Elevation of the requester's laser terminal in its body frame (rad).
    pub laser_elevation_rad: f64,
    /// Fraction of the requester's ISL bandwidth currently uncommitted,
    /// in `[0, 1]` — the "current load of the spacecraft" from §2.1.
    pub available_bandwidth_fraction: f64,
}

impl PairRequest {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.requester.0);
        w.u64(self.target.0);
        w.u16(self.capabilities.to_bits());
        w.f64(self.laser_azimuth_rad);
        w.f64(self.laser_elevation_rad);
        w.f64(self.available_bandwidth_fraction);
    }

    /// Parse and validate the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let requester = SatelliteId(r.u64()?);
        let target = SatelliteId(r.u64()?);
        let capabilities = Capabilities::from_bits(r.u16()?);
        let laser_azimuth_rad = r.f64()?;
        let laser_elevation_rad = r.f64()?;
        let available_bandwidth_fraction = r.f64()?;
        if !(0.0..=1.0).contains(&available_bandwidth_fraction) {
            return Err(WireError::IllegalField {
                field: "available_bandwidth_fraction",
            });
        }
        if requester == target {
            return Err(WireError::IllegalField { field: "target" });
        }
        Ok(Self {
            requester,
            target,
            capabilities,
            laser_azimuth_rad,
            laser_elevation_rad,
            available_bandwidth_fraction,
        })
    }
}

/// Why a pair request was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No common link technology.
    Incompatible,
    /// Responder has no uncommitted ISL bandwidth.
    NoBandwidth,
    /// Responder cannot afford the power for another ISL (§2.2).
    PowerConstrained,
    /// Target is about to leave line of sight.
    GeometryExpiring,
}

impl RejectReason {
    fn to_code(self) -> u8 {
        match self {
            Self::Incompatible => 1,
            Self::NoBandwidth => 2,
            Self::PowerConstrained => 3,
            Self::GeometryExpiring => 4,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        Ok(match c {
            1 => Self::Incompatible,
            2 => Self::NoBandwidth,
            3 => Self::PowerConstrained,
            4 => Self::GeometryExpiring,
            _ => {
                return Err(WireError::IllegalField {
                    field: "reject_reason",
                })
            }
        })
    }
}

/// Outcome of a pair request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairVerdict {
    /// Accepted; the link will use the given technology. For optical
    /// links, `orient_time_s` is the responder's estimate of its slew +
    /// acquisition time before data can flow.
    Accept {
        /// Agreed link technology.
        technology: LinkTechnology,
        /// Responder's slew+acquire estimate (s); 0 for RF.
        orient_time_s: f64,
    },
    /// Declined with a reason.
    Reject(RejectReason),
}

/// Pair response unicast back to the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct PairResponse {
    /// Responding satellite.
    pub responder: SatelliteId,
    /// The requester this answers.
    pub requester: SatelliteId,
    /// Accept or reject.
    pub verdict: PairVerdict,
}

impl PairResponse {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.responder.0);
        w.u64(self.requester.0);
        match self.verdict {
            PairVerdict::Accept {
                technology,
                orient_time_s,
            } => {
                w.u8(0);
                w.u8(match technology {
                    LinkTechnology::Rf => 0,
                    LinkTechnology::Optical => 1,
                });
                w.f64(orient_time_s);
            }
            PairVerdict::Reject(reason) => {
                w.u8(1);
                w.u8(reason.to_code());
                w.f64(0.0);
            }
        }
    }

    /// Parse and validate the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let responder = SatelliteId(r.u64()?);
        let requester = SatelliteId(r.u64()?);
        let kind = r.u8()?;
        let code = r.u8()?;
        let orient_time_s = r.f64()?;
        let verdict = match kind {
            0 => {
                let technology = match code {
                    0 => LinkTechnology::Rf,
                    1 => LinkTechnology::Optical,
                    _ => {
                        return Err(WireError::IllegalField {
                            field: "technology",
                        })
                    }
                };
                if !(orient_time_s.is_finite() && orient_time_s >= 0.0) {
                    return Err(WireError::IllegalField {
                        field: "orient_time_s",
                    });
                }
                PairVerdict::Accept {
                    technology,
                    orient_time_s,
                }
            }
            1 => PairVerdict::Reject(RejectReason::from_code(code)?),
            _ => return Err(WireError::IllegalField { field: "verdict" }),
        };
        Ok(Self {
            responder,
            requester,
            verdict,
        })
    }
}

/// Initiator-side pairing state machine.
///
/// Drives one pairing attempt from beacon receipt to an established link,
/// including the optical orientation phase when the peers agree on a
/// laser link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairingState {
    /// No attempt in progress.
    Idle,
    /// Pair request sent; waiting for the response (with a deadline).
    AwaitingResponse {
        /// When the request was sent (s).
        sent_at_s: f64,
        /// Give-up deadline (s).
        deadline_s: f64,
    },
    /// Optical link agreed; both ends are slewing/acquiring.
    Orienting {
        /// When orientation completes and the link is usable (s).
        ready_at_s: f64,
    },
    /// Link is live.
    Established {
        /// Technology in use.
        technology: LinkTechnology,
    },
    /// Attempt failed (rejected or timed out).
    Failed(PairFailure),
}

/// Why a pairing attempt ended without a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairFailure {
    /// No response before the deadline.
    Timeout,
    /// Peer said no.
    Rejected(RejectReason),
}

/// The initiator's pairing driver.
#[derive(Debug, Clone, Copy)]
pub struct PairingMachine {
    state: PairingState,
}

impl Default for PairingMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl PairingMachine {
    /// Start in `Idle`.
    pub fn new() -> Self {
        Self {
            state: PairingState::Idle,
        }
    }

    /// Current state.
    pub fn state(&self) -> PairingState {
        self.state
    }

    /// Record that a pair request was transmitted at `now_s`, with
    /// `timeout_s` to wait for the answer.
    ///
    /// # Panics
    /// Panics unless the machine is `Idle` or `Failed` (restart allowed).
    pub fn request_sent(&mut self, now_s: f64, timeout_s: f64) {
        assert!(
            matches!(self.state, PairingState::Idle | PairingState::Failed(_)),
            "request_sent from state {:?}",
            self.state
        );
        assert!(timeout_s > 0.0, "timeout must be positive");
        self.state = PairingState::AwaitingResponse {
            sent_at_s: now_s,
            deadline_s: now_s + timeout_s,
        };
    }

    /// Feed the peer's response, received at `now_s`.
    ///
    /// Late responses (after the deadline) are ignored — the machine will
    /// already have timed out via [`Self::tick`].
    pub fn response_received(&mut self, response: &PairResponse, now_s: f64) {
        let PairingState::AwaitingResponse { deadline_s, .. } = self.state else {
            return; // stale or duplicate response
        };
        if now_s > deadline_s {
            return;
        }
        self.state = match response.verdict {
            PairVerdict::Accept {
                technology: LinkTechnology::Rf,
                ..
            } => PairingState::Established {
                technology: LinkTechnology::Rf,
            },
            PairVerdict::Accept {
                technology: LinkTechnology::Optical,
                orient_time_s,
            } => PairingState::Orienting {
                ready_at_s: now_s + orient_time_s,
            },
            PairVerdict::Reject(reason) => PairingState::Failed(PairFailure::Rejected(reason)),
        };
    }

    /// Advance wall-clock: fires timeouts and completes orientation.
    pub fn tick(&mut self, now_s: f64) {
        match self.state {
            PairingState::AwaitingResponse { deadline_s, .. } if now_s > deadline_s => {
                self.state = PairingState::Failed(PairFailure::Timeout);
            }
            PairingState::Orienting { ready_at_s } if now_s >= ready_at_s => {
                self.state = PairingState::Established {
                    technology: LinkTechnology::Optical,
                };
            }
            _ => {}
        }
    }
}

/// Responder-side admission decision: the policy §2.1 sketches.
///
/// Accepts with the best common technology, subject to bandwidth and
/// power; optical requires both sides' capability plus responder headroom.
pub fn decide_pair(
    request: &PairRequest,
    responder_caps: Capabilities,
    responder_bandwidth_fraction: f64,
    responder_power_ok: bool,
    optical_orient_time_s: f64,
) -> PairVerdict {
    let Some(common) = request.capabilities.common_link(responder_caps) else {
        return PairVerdict::Reject(RejectReason::Incompatible);
    };
    if responder_bandwidth_fraction <= 0.0 || request.available_bandwidth_fraction <= 0.0 {
        return PairVerdict::Reject(RejectReason::NoBandwidth);
    }
    if !responder_power_ok {
        return PairVerdict::Reject(RejectReason::PowerConstrained);
    }
    match common {
        // Optical needs spare capacity on both ends to be worth the slew;
        // otherwise fall back to RF (§2.1: "depending on the
        // specifications and current load of the spacecraft involved").
        LinkTechnology::Optical
            if responder_bandwidth_fraction >= 0.25
                && request.available_bandwidth_fraction >= 0.25 =>
        {
            PairVerdict::Accept {
                technology: LinkTechnology::Optical,
                orient_time_s: optical_orient_time_s,
            }
        }
        _ => PairVerdict::Accept {
            technology: LinkTechnology::Rf,
            orient_time_s: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> PairRequest {
        PairRequest {
            requester: SatelliteId(1),
            target: SatelliteId(2),
            capabilities: Capabilities::rf_and_optical(),
            laser_azimuth_rad: 0.3,
            laser_elevation_rad: -0.1,
            available_bandwidth_fraction: 0.8,
        }
    }

    #[test]
    fn request_round_trip() {
        let m = sample_request();
        let mut w = Writer::default();
        m.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            PairRequest::decode_payload(&mut Reader::new(&b)).unwrap(),
            m
        );
    }

    #[test]
    fn self_pair_rejected() {
        let mut m = sample_request();
        m.target = m.requester;
        let mut w = Writer::default();
        m.encode_payload(&mut w);
        let b = w.into_bytes();
        assert!(PairRequest::decode_payload(&mut Reader::new(&b)).is_err());
    }

    #[test]
    fn bandwidth_fraction_validated() {
        let mut m = sample_request();
        m.available_bandwidth_fraction = 1.5;
        let mut w = Writer::default();
        m.encode_payload(&mut w);
        let b = w.into_bytes();
        assert!(PairRequest::decode_payload(&mut Reader::new(&b)).is_err());
    }

    #[test]
    fn response_round_trip_accept_and_reject() {
        for verdict in [
            PairVerdict::Accept {
                technology: LinkTechnology::Optical,
                orient_time_s: 42.0,
            },
            PairVerdict::Accept {
                technology: LinkTechnology::Rf,
                orient_time_s: 0.0,
            },
            PairVerdict::Reject(RejectReason::PowerConstrained),
        ] {
            let m = PairResponse {
                responder: SatelliteId(2),
                requester: SatelliteId(1),
                verdict,
            };
            let mut w = Writer::default();
            m.encode_payload(&mut w);
            let b = w.into_bytes();
            assert_eq!(
                PairResponse::decode_payload(&mut Reader::new(&b)).unwrap(),
                m
            );
        }
    }

    #[test]
    fn decide_prefers_optical_with_headroom() {
        let v = decide_pair(
            &sample_request(),
            Capabilities::rf_and_optical(),
            0.7,
            true,
            30.0,
        );
        assert!(matches!(
            v,
            PairVerdict::Accept {
                technology: LinkTechnology::Optical,
                ..
            }
        ));
    }

    #[test]
    fn decide_falls_back_to_rf_when_loaded() {
        let v = decide_pair(
            &sample_request(),
            Capabilities::rf_and_optical(),
            0.1,
            true,
            30.0,
        );
        assert_eq!(
            v,
            PairVerdict::Accept {
                technology: LinkTechnology::Rf,
                orient_time_s: 0.0
            }
        );
    }

    #[test]
    fn decide_rejects_on_power() {
        let v = decide_pair(&sample_request(), Capabilities::rf_only(), 0.9, false, 0.0);
        assert_eq!(v, PairVerdict::Reject(RejectReason::PowerConstrained));
    }

    #[test]
    fn decide_rejects_incompatible() {
        let v = decide_pair(
            &sample_request(),
            Capabilities::from_bits(0), // nothing — not even RF
            0.9,
            true,
            0.0,
        );
        assert_eq!(v, PairVerdict::Reject(RejectReason::Incompatible));
    }

    #[test]
    fn machine_happy_path_rf() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 5.0);
        let resp = PairResponse {
            responder: SatelliteId(2),
            requester: SatelliteId(1),
            verdict: PairVerdict::Accept {
                technology: LinkTechnology::Rf,
                orient_time_s: 0.0,
            },
        };
        m.response_received(&resp, 1.0);
        assert_eq!(
            m.state(),
            PairingState::Established {
                technology: LinkTechnology::Rf
            }
        );
    }

    #[test]
    fn machine_optical_orients_then_establishes() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 5.0);
        let resp = PairResponse {
            responder: SatelliteId(2),
            requester: SatelliteId(1),
            verdict: PairVerdict::Accept {
                technology: LinkTechnology::Optical,
                orient_time_s: 30.0,
            },
        };
        m.response_received(&resp, 1.0);
        assert!(matches!(m.state(), PairingState::Orienting { .. }));
        m.tick(20.0);
        assert!(matches!(m.state(), PairingState::Orienting { .. }));
        m.tick(31.0);
        assert_eq!(
            m.state(),
            PairingState::Established {
                technology: LinkTechnology::Optical
            }
        );
    }

    #[test]
    fn machine_times_out() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 5.0);
        m.tick(5.1);
        assert_eq!(m.state(), PairingState::Failed(PairFailure::Timeout));
    }

    #[test]
    fn late_response_ignored_after_timeout() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 5.0);
        m.tick(6.0);
        let resp = PairResponse {
            responder: SatelliteId(2),
            requester: SatelliteId(1),
            verdict: PairVerdict::Accept {
                technology: LinkTechnology::Rf,
                orient_time_s: 0.0,
            },
        };
        m.response_received(&resp, 6.5);
        assert_eq!(m.state(), PairingState::Failed(PairFailure::Timeout));
    }

    #[test]
    fn machine_can_retry_after_failure() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 1.0);
        m.tick(2.0);
        assert!(matches!(m.state(), PairingState::Failed(_)));
        m.request_sent(3.0, 1.0);
        assert!(matches!(m.state(), PairingState::AwaitingResponse { .. }));
    }

    #[test]
    #[should_panic(expected = "request_sent from state")]
    fn double_request_panics() {
        let mut m = PairingMachine::new();
        m.request_sent(0.0, 5.0);
        m.request_sent(0.1, 5.0);
    }
}
