//! The OpenSpace frame envelope and message dispatch.
//!
//! Every protocol message travels in one envelope:
//!
//! ```text
//! 0      2      3      4        6              14        14+len    +4
//! +------+------+------+--------+--------------+---------+---------+
//! | magic| ver  | type | length | sender (u64) | payload | fletcher|
//! +------+------+------+--------+--------------+---------+---------+
//! ```
//!
//! `length` covers the payload only; the checksum covers everything
//! before it. Parsing is strict: bad magic, version, length, or checksum
//! all yield typed errors, and trailing garbage is rejected.

use crate::accounting::AccountingRecord;
use crate::auth::{AccessAccept, AccessReject, AccessRequest};
use crate::beacon::Beacon;
use crate::handover::{HandoverCommit, HandoverPrepare};
use crate::pairing::{PairRequest, PairResponse};
use crate::wire::{fletcher32, Reader, WireError, Writer};

/// Frame magic: ASCII "OS".
pub const MAGIC: u16 = 0x4F53;

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes (magic + version + type + length + sender).
pub const HEADER_LEN: usize = 14;

/// Checksum trailer size in bytes.
pub const TRAILER_LEN: usize = 4;

/// All OpenSpace protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Periodic presence beacon (§2.2).
    Beacon(Beacon),
    /// ISL pair request (§2.1).
    PairRequest(PairRequest),
    /// ISL pair response.
    PairResponse(PairResponse),
    /// RADIUS-like Access-Request toward the user's home ISP.
    AccessRequest(AccessRequest),
    /// Access accepted; carries the roaming certificate.
    AccessAccept(AccessAccept),
    /// Access rejected.
    AccessReject(AccessReject),
    /// Handover preparation from serving satellite to user.
    HandoverPrepare(HandoverPrepare),
    /// Handover commit from user to successor satellite.
    HandoverCommit(HandoverCommit),
    /// Cross-verifiable traffic accounting record (§3).
    Accounting(AccountingRecord),
}

impl Message {
    /// Wire type code.
    pub fn type_code(&self) -> u8 {
        match self {
            Self::Beacon(_) => 0x01,
            Self::PairRequest(_) => 0x02,
            Self::PairResponse(_) => 0x03,
            Self::AccessRequest(_) => 0x10,
            Self::AccessAccept(_) => 0x11,
            Self::AccessReject(_) => 0x12,
            Self::HandoverPrepare(_) => 0x20,
            Self::HandoverCommit(_) => 0x21,
            Self::Accounting(_) => 0x30,
        }
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            Self::Beacon(m) => m.encode_payload(w),
            Self::PairRequest(m) => m.encode_payload(w),
            Self::PairResponse(m) => m.encode_payload(w),
            Self::AccessRequest(m) => m.encode_payload(w),
            Self::AccessAccept(m) => m.encode_payload(w),
            Self::AccessReject(m) => m.encode_payload(w),
            Self::HandoverPrepare(m) => m.encode_payload(w),
            Self::HandoverCommit(m) => m.encode_payload(w),
            Self::Accounting(m) => m.encode_payload(w),
        }
    }

    fn decode_payload(code: u8, r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match code {
            0x01 => Self::Beacon(Beacon::decode_payload(r)?),
            0x02 => Self::PairRequest(PairRequest::decode_payload(r)?),
            0x03 => Self::PairResponse(PairResponse::decode_payload(r)?),
            0x10 => Self::AccessRequest(AccessRequest::decode_payload(r)?),
            0x11 => Self::AccessAccept(AccessAccept::decode_payload(r)?),
            0x12 => Self::AccessReject(AccessReject::decode_payload(r)?),
            0x20 => Self::HandoverPrepare(HandoverPrepare::decode_payload(r)?),
            0x21 => Self::HandoverCommit(HandoverCommit::decode_payload(r)?),
            0x30 => Self::Accounting(AccountingRecord::decode_payload(r)?),
            other => return Err(WireError::UnknownMessageType(other)),
        })
    }
}

/// A decoded frame: sender plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The node that emitted the frame (satellite, user, or station id,
    /// per the message semantics).
    pub sender: u64,
    /// The message body.
    pub message: Message,
}

impl Frame {
    /// Encode to wire bytes: header, payload, Fletcher-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Writer::with_capacity(96);
        self.message.encode_payload(&mut payload);
        let payload = payload.into_bytes();
        assert!(
            payload.len() <= u16::MAX as usize,
            "payload exceeds length field"
        );

        let mut w = Writer::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        w.u16(MAGIC);
        w.u8(VERSION);
        w.u8(self.message.type_code());
        w.u16(payload.len() as u16);
        w.u64(self.sender);
        w.bytes(&payload);
        let mut out = w.into_bytes();
        let ck = fletcher32(&out);
        out.extend_from_slice(&ck.to_be_bytes());
        out
    }

    /// Decode from wire bytes. Strict: rejects bad magic/version/length/
    /// checksum, unknown types, and trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let magic = r.u16()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let type_code = r.u8()?;
        let stated_len = r.u16()? as usize;
        let sender = r.u64()?;

        let actual_payload = buf.len().saturating_sub(HEADER_LEN + TRAILER_LEN);
        if actual_payload != stated_len {
            return Err(WireError::BadLength {
                stated: stated_len,
                actual: actual_payload,
            });
        }
        // Verify checksum over header+payload.
        let body_end = HEADER_LEN + stated_len;
        let computed = fletcher32(&buf[..body_end]);
        let mut trailer = Reader::new(&buf[body_end..]);
        let stated = trailer.u32()?;
        if stated != computed {
            return Err(WireError::BadChecksum { stated, computed });
        }

        let message = Message::decode_payload(type_code, &mut r)?;
        // The payload parser must consume exactly the stated payload.
        if r.position() != body_end {
            return Err(WireError::BadLength {
                stated: stated_len,
                actual: r.position() - HEADER_LEN,
            });
        }
        Ok(Self { sender, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Capabilities, OperatorId, SatelliteId};

    fn sample_frame() -> Frame {
        Frame {
            sender: 42,
            message: Message::Beacon(Beacon {
                satellite: SatelliteId(42),
                operator: OperatorId(7),
                capabilities: Capabilities::rf_and_optical(),
                timestamp_ms: 123_456,
                semi_major_axis_m: 7.158e6,
                eccentricity: 0.0,
                inclination_rad: 1.508,
                raan_rad: 0.5,
                arg_perigee_rad: 0.0,
                mean_anomaly_rad: 2.2,
            }),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample_frame();
        let bytes = f.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_frame().encode();
        bytes[0] = 0x00;
        assert!(matches!(Frame::decode(&bytes), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_frame().encode();
        bytes[2] = 99;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = sample_frame().encode();
        let mid = HEADER_LEN + 4;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = sample_frame().encode();
        for cut in [0, 1, 5, HEADER_LEN, bytes.len() - 1] {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_frame().encode();
        bytes.push(0);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = sample_frame().encode();
        bytes[3] = 0x7F;
        // Fix up the checksum so the type check is what fires.
        let body_end = bytes.len() - TRAILER_LEN;
        let ck = fletcher32(&bytes[..body_end]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::UnknownMessageType(0x7F))
        ));
    }
}
