//! RADIUS-like federated authentication.
//!
//! §2.2: "Upon initial association, the user device identifies its home
//! ISP and proceeds to authenticate with it through a standardized
//! protocol such as RADIUS. This means that an association request from a
//! user has to be authenticated by their home satellite provider, and
//! this can be done through ISLs."
//!
//! Flow (challenge-response, one round trip to the home AAA over ISLs):
//!
//! ```text
//! user → serving sat : AccessRequest { user, home, nonce,
//!                                      proof = tag(user_secret, nonce) }
//!        serving sat relays over ISLs to the home operator's AAA
//! home AAA             : verifies proof, issues Certificate
//! user ← serving sat : AccessAccept { certificate }   (or AccessReject)
//! ```
//!
//! The home AAA side is [`AuthService`]; the user side is
//! [`make_access_request`]. Visited operators verify the resulting
//! certificate offline via the issuer's federation secret.

use crate::certificate::Certificate;
use crate::crypto::{compute_tag, verify_tag, SharedSecret, Tag};
use crate::types::{OperatorId, UserId};
use crate::wire::{Reader, WireError, Writer};

/// Access-Request: the user's authentication claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRequest {
    /// The requesting user.
    pub user: UserId,
    /// The user's home operator (who can check the proof).
    pub home_operator: OperatorId,
    /// Client nonce (replay protection).
    pub nonce: u64,
    /// `tag(user_secret, user ‖ home ‖ nonce)`.
    pub proof: Tag,
}

impl AccessRequest {
    fn proof_bytes(user: UserId, home: OperatorId, nonce: u64) -> [u8; 20] {
        let mut b = [0u8; 20];
        b[..8].copy_from_slice(&user.0.to_be_bytes());
        b[8..12].copy_from_slice(&home.0.to_be_bytes());
        b[12..20].copy_from_slice(&nonce.to_be_bytes());
        b
    }

    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.user.0);
        w.u32(self.home_operator.0);
        w.u64(self.nonce);
        w.bytes(&self.proof.0);
    }

    /// Parse the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            user: UserId(r.u64()?),
            home_operator: OperatorId(r.u32()?),
            nonce: r.u64()?,
            proof: Tag(r.bytes::<16>()?),
        })
    }
}

/// Build a valid Access-Request on the user side.
pub fn make_access_request(
    user: UserId,
    home_operator: OperatorId,
    nonce: u64,
    user_secret: &SharedSecret,
) -> AccessRequest {
    let proof = compute_tag(
        user_secret,
        &AccessRequest::proof_bytes(user, home_operator, nonce),
    );
    AccessRequest {
        user,
        home_operator,
        nonce,
        proof,
    }
}

/// Access-Accept: carries the roaming certificate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessAccept {
    /// Echoed nonce.
    pub nonce: u64,
    /// The issued certificate.
    pub certificate: Certificate,
}

impl AccessAccept {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.nonce);
        self.certificate.encode(w);
    }

    /// Parse the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            nonce: r.u64()?,
            certificate: Certificate::decode(r)?,
        })
    }
}

/// Why access was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthFailure {
    /// Proof did not verify under the user's registered secret.
    BadCredentials,
    /// The user is not registered with this home operator.
    UnknownUser,
    /// The nonce was already used (replay).
    ReplayedNonce,
}

impl AuthFailure {
    fn to_code(self) -> u8 {
        match self {
            Self::BadCredentials => 1,
            Self::UnknownUser => 2,
            Self::ReplayedNonce => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        Ok(match c {
            1 => Self::BadCredentials,
            2 => Self::UnknownUser,
            3 => Self::ReplayedNonce,
            _ => {
                return Err(WireError::IllegalField {
                    field: "auth_failure",
                })
            }
        })
    }
}

/// Access-Reject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessReject {
    /// Echoed nonce.
    pub nonce: u64,
    /// Denial reason.
    pub reason: AuthFailure,
}

impl AccessReject {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.nonce);
        w.u8(self.reason.to_code());
    }

    /// Parse the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            nonce: r.u64()?,
            reason: AuthFailure::from_code(r.u8()?)?,
        })
    }
}

/// A home operator's AAA service: registered user secrets, replay cache,
/// and certificate issuance.
#[derive(Debug)]
pub struct AuthService {
    operator: OperatorId,
    federation_secret: SharedSecret,
    users: std::collections::HashMap<UserId, SharedSecret>,
    seen_nonces: std::collections::HashMap<UserId, std::collections::HashSet<u64>>,
    /// Certificate lifetime (ms).
    pub certificate_lifetime_ms: u64,
}

impl AuthService {
    /// Create the AAA service for `operator`, signing certificates under
    /// `federation_secret`.
    pub fn new(operator: OperatorId, federation_secret: SharedSecret) -> Self {
        Self {
            operator,
            federation_secret,
            users: Default::default(),
            seen_nonces: Default::default(),
            certificate_lifetime_ms: 24 * 3600 * 1000,
        }
    }

    /// The operator this service authenticates for.
    pub fn operator(&self) -> OperatorId {
        self.operator
    }

    /// Register a subscriber and their shared secret.
    pub fn register_user(&mut self, user: UserId, secret: SharedSecret) {
        self.users.insert(user, secret);
    }

    /// Number of registered subscribers.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Process an Access-Request at `now_ms`; returns the certificate on
    /// success.
    pub fn handle_request(
        &mut self,
        req: &AccessRequest,
        now_ms: u64,
    ) -> Result<AccessAccept, AccessReject> {
        let reject = |reason| AccessReject {
            nonce: req.nonce,
            reason,
        };
        if req.home_operator != self.operator {
            return Err(reject(AuthFailure::UnknownUser));
        }
        let Some(secret) = self.users.get(&req.user) else {
            return Err(reject(AuthFailure::UnknownUser));
        };
        let bytes = AccessRequest::proof_bytes(req.user, req.home_operator, req.nonce);
        if !verify_tag(secret, &bytes, &req.proof) {
            return Err(reject(AuthFailure::BadCredentials));
        }
        let nonces = self.seen_nonces.entry(req.user).or_default();
        if !nonces.insert(req.nonce) {
            return Err(reject(AuthFailure::ReplayedNonce));
        }
        let certificate = Certificate::issue(
            req.user,
            self.operator,
            now_ms,
            now_ms + self.certificate_lifetime_ms,
            &self.federation_secret,
        );
        Ok(AccessAccept {
            nonce: req.nonce,
            certificate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AuthService, UserId, SharedSecret) {
        let fed = SharedSecret::derive(3, "federation");
        let mut svc = AuthService::new(OperatorId(3), fed);
        let user = UserId(100);
        let user_secret = SharedSecret::derive(100, "subscriber");
        svc.register_user(user, user_secret);
        (svc, user, user_secret)
    }

    #[test]
    fn valid_request_yields_verifiable_certificate() {
        let (mut svc, user, secret) = setup();
        let req = make_access_request(user, OperatorId(3), 1, &secret);
        let accept = svc.handle_request(&req, 10_000).unwrap();
        assert_eq!(accept.nonce, 1);
        let fed = SharedSecret::derive(3, "federation");
        assert!(accept.certificate.verify(&fed, 10_001));
        assert_eq!(accept.certificate.user, user);
    }

    #[test]
    fn wrong_secret_rejected() {
        let (mut svc, user, _) = setup();
        let bad = SharedSecret::derive(999, "subscriber");
        let req = make_access_request(user, OperatorId(3), 1, &bad);
        let rej = svc.handle_request(&req, 0).unwrap_err();
        assert_eq!(rej.reason, AuthFailure::BadCredentials);
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut svc, _, secret) = setup();
        let req = make_access_request(UserId(555), OperatorId(3), 1, &secret);
        let rej = svc.handle_request(&req, 0).unwrap_err();
        assert_eq!(rej.reason, AuthFailure::UnknownUser);
    }

    #[test]
    fn wrong_home_operator_rejected() {
        let (mut svc, user, secret) = setup();
        let req = make_access_request(user, OperatorId(4), 1, &secret);
        let rej = svc.handle_request(&req, 0).unwrap_err();
        assert_eq!(rej.reason, AuthFailure::UnknownUser);
    }

    #[test]
    fn replayed_nonce_rejected() {
        let (mut svc, user, secret) = setup();
        let req = make_access_request(user, OperatorId(3), 7, &secret);
        svc.handle_request(&req, 0).unwrap();
        let rej = svc.handle_request(&req, 1).unwrap_err();
        assert_eq!(rej.reason, AuthFailure::ReplayedNonce);
    }

    #[test]
    fn distinct_nonces_accepted() {
        let (mut svc, user, secret) = setup();
        for nonce in 1..=5 {
            let req = make_access_request(user, OperatorId(3), nonce, &secret);
            assert!(svc.handle_request(&req, 0).is_ok(), "nonce {nonce}");
        }
    }

    #[test]
    fn request_wire_round_trip() {
        let secret = SharedSecret::derive(1, "subscriber");
        let req = make_access_request(UserId(1), OperatorId(2), 42, &secret);
        let mut w = Writer::default();
        req.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            AccessRequest::decode_payload(&mut Reader::new(&b)).unwrap(),
            req
        );
    }

    #[test]
    fn accept_and_reject_wire_round_trips() {
        let (mut svc, user, secret) = setup();
        let req = make_access_request(user, OperatorId(3), 1, &secret);
        let accept = svc.handle_request(&req, 500).unwrap();
        let mut w = Writer::default();
        accept.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            AccessAccept::decode_payload(&mut Reader::new(&b)).unwrap(),
            accept
        );

        let rej = AccessReject {
            nonce: 9,
            reason: AuthFailure::ReplayedNonce,
        };
        let mut w = Writer::default();
        rej.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            AccessReject::decode_payload(&mut Reader::new(&b)).unwrap(),
            rej
        );
    }

    #[test]
    fn certificate_lifetime_configurable() {
        let (mut svc, user, secret) = setup();
        svc.certificate_lifetime_ms = 1_000;
        let req = make_access_request(user, OperatorId(3), 1, &secret);
        let accept = svc.handle_request(&req, 0).unwrap();
        assert_eq!(accept.certificate.expires_at_ms, 1_000);
    }
}
