//! Identifier and capability types shared across the protocol.

/// A satellite's network-wide identifier (unique across all operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatelliteId(pub u64);

/// An operator ("ISP" in the paper's roaming analogy) identifier.
///
/// Re-exported from `openspace_sim::ids` so the protocol, simulator and
/// federation layers all share one type — an operator named in a fault
/// plan is the same operator named in a roaming request.
pub use openspace_sim::ids::OperatorId;

/// A ground user's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

/// A ground station's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundStationId(pub u32);

impl std::fmt::Display for SatelliteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sat-{}", self.0)
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

impl std::fmt::Display for GroundStationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gs-{}", self.0)
    }
}

/// Link technologies a spacecraft can offer (§2.1: RF at a minimum,
/// optionally standardized laser links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTechnology {
    /// RF on the common S/UHF ISL bands — mandatory in OpenSpace.
    Rf,
    /// Optical (laser) ISL — optional, higher throughput.
    Optical,
}

/// Capability bitmap carried in beacons and pair requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    bits: u16,
}

impl Capabilities {
    const RF: u16 = 1 << 0;
    const OPTICAL: u16 = 1 << 1;
    const GROUND_RELAY: u16 = 1 << 2;
    const STORE_AND_FORWARD: u16 = 1 << 3;

    /// The OpenSpace minimum: RF ISLs only.
    pub fn rf_only() -> Self {
        Self { bits: Self::RF }
    }

    /// RF plus optical terminals.
    pub fn rf_and_optical() -> Self {
        Self {
            bits: Self::RF | Self::OPTICAL,
        }
    }

    /// Whether RF ISLs are supported (must be true for any valid member).
    pub fn has_rf(self) -> bool {
        self.bits & Self::RF != 0
    }

    /// Whether optical ISLs are supported.
    pub fn has_optical(self) -> bool {
        self.bits & Self::OPTICAL != 0
    }

    /// Whether this satellite can relay to ground stations.
    pub fn has_ground_relay(self) -> bool {
        self.bits & Self::GROUND_RELAY != 0
    }

    /// Whether delay-tolerant store-and-forward is offered.
    pub fn has_store_and_forward(self) -> bool {
        self.bits & Self::STORE_AND_FORWARD != 0
    }

    /// Set the ground-relay flag.
    pub fn with_ground_relay(mut self) -> Self {
        self.bits |= Self::GROUND_RELAY;
        self
    }

    /// Set the store-and-forward flag.
    pub fn with_store_and_forward(mut self) -> Self {
        self.bits |= Self::STORE_AND_FORWARD;
        self
    }

    /// Raw bits for the wire.
    pub fn to_bits(self) -> u16 {
        self.bits
    }

    /// Rebuild from wire bits. Unknown bits are preserved (forward
    /// compatibility), so this cannot fail.
    pub fn from_bits(bits: u16) -> Self {
        Self { bits }
    }

    /// The best common ISL technology between two capability sets:
    /// optical when both support it, else RF when both do.
    pub fn common_link(self, other: Self) -> Option<LinkTechnology> {
        if self.has_optical() && other.has_optical() {
            Some(LinkTechnology::Optical)
        } else if self.has_rf() && other.has_rf() {
            Some(LinkTechnology::Rf)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_only_has_rf_not_optical() {
        let c = Capabilities::rf_only();
        assert!(c.has_rf());
        assert!(!c.has_optical());
    }

    #[test]
    fn bit_round_trip() {
        let c = Capabilities::rf_and_optical()
            .with_ground_relay()
            .with_store_and_forward();
        let back = Capabilities::from_bits(c.to_bits());
        assert_eq!(c, back);
        assert!(back.has_ground_relay());
        assert!(back.has_store_and_forward());
    }

    #[test]
    fn unknown_bits_preserved() {
        let c = Capabilities::from_bits(0x8001);
        assert_eq!(c.to_bits(), 0x8001);
        assert!(c.has_rf());
    }

    #[test]
    fn common_link_prefers_optical() {
        let a = Capabilities::rf_and_optical();
        let b = Capabilities::rf_and_optical();
        assert_eq!(a.common_link(b), Some(LinkTechnology::Optical));
    }

    #[test]
    fn common_link_falls_back_to_rf() {
        let a = Capabilities::rf_and_optical();
        let b = Capabilities::rf_only();
        assert_eq!(a.common_link(b), Some(LinkTechnology::Rf));
        assert_eq!(b.common_link(a), Some(LinkTechnology::Rf));
    }

    #[test]
    fn no_common_link_without_rf() {
        let a = Capabilities::from_bits(0);
        let b = Capabilities::rf_only();
        assert_eq!(a.common_link(b), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SatelliteId(7).to_string(), "sat-7");
        assert_eq!(OperatorId(2).to_string(), "op-2");
        assert_eq!(UserId(9).to_string(), "user-9");
        assert_eq!(GroundStationId(1).to_string(), "gs-1");
    }
}
