//! Wire-format primitives: a bounds-checked reader/writer pair, the common
//! OpenSpace frame header, and the frame checksum.
//!
//! Style follows smoltcp: parsing never allocates, every read is
//! length-checked up front, and malformed input surfaces as a typed
//! [`WireError`] — never a panic.
//!
//! All multi-byte fields are big-endian (network order).

/// Errors surfaced while parsing or emitting frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field did.
    Truncated {
        /// Bytes needed to finish the read/write.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Frame does not start with the OpenSpace magic.
    BadMagic(u16),
    /// Protocol version not understood.
    UnsupportedVersion(u8),
    /// Checksum mismatch.
    BadChecksum {
        /// Checksum carried in the frame.
        stated: u32,
        /// Checksum computed over the frame.
        computed: u32,
    },
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// The header's length field disagrees with the payload present.
    BadLength {
        /// Length stated in the header.
        stated: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A field held a value outside its legal domain.
    IllegalField {
        /// Field name (static, for diagnostics).
        field: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            Self::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            Self::BadChecksum { stated, computed } => {
                write!(
                    f,
                    "checksum mismatch: stated {stated:#010x}, computed {computed:#010x}"
                )
            }
            Self::UnknownMessageType(t) => write!(f, "unknown message type {t:#04x}"),
            Self::BadLength { stated, actual } => {
                write!(f, "bad length: header says {stated}, payload has {actual}")
            }
            Self::IllegalField { field } => write!(f, "illegal value in field `{field}`"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked big-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an IEEE-754 f64 (big-endian bit pattern).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read exactly `N` raw bytes into an array.
    pub fn bytes<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// Read `n` raw bytes as a slice borrowed from the buffer.
    pub fn slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

/// Append-only big-endian writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start with an empty buffer of the given capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finish, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write an f64 (big-endian bit pattern).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Fletcher-32 checksum over a byte slice (padded with a trailing zero when
/// the length is odd). Fast, order-sensitive, and adequate for simulation
/// framing — this is link-layer integrity, not cryptography.
pub fn fletcher32(data: &[u8]) -> u32 {
    let mut a: u32 = 0;
    let mut b: u32 = 0;
    let mut iter = data.chunks_exact(2);
    for ch in &mut iter {
        let w = u16::from_be_bytes([ch[0], ch[1]]) as u32;
        a = (a + w) % 65_535;
        b = (b + a) % 65_535;
    }
    if let [last] = iter.remainder() {
        let w = u16::from_be_bytes([*last, 0]) as u32;
        a = (a + w) % 65_535;
        b = (b + a) % 65_535;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = Writer::default();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.f64(-1234.5678);
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap(), -1234.5678);
        assert_eq!(r.bytes::<3>().unwrap(), [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_reports_sizes() {
        let mut r = Reader::new(&[1, 2]);
        match r.u32() {
            Err(WireError::Truncated { needed, available }) => {
                assert_eq!(needed, 4);
                assert_eq!(available, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Failed read must not consume.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn reads_are_big_endian() {
        let mut r = Reader::new(&[0x12, 0x34]);
        assert_eq!(r.u16().unwrap(), 0x1234);
    }

    #[test]
    fn slice_borrows_without_copy() {
        let buf = [9u8, 8, 7, 6];
        let mut r = Reader::new(&buf);
        let s = r.slice(3).unwrap();
        assert_eq!(s, &[9, 8, 7]);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn fletcher_known_values() {
        // Classic test vectors: "abcde" -> 0xF04FC729, "abcdef" -> 0x56502D2A
        // (16-bit blocks big-endian per our definition differ from the
        // little-endian reference, so check self-consistency instead.)
        assert_eq!(fletcher32(b""), 0);
        assert_ne!(fletcher32(b"abcde"), fletcher32(b"abcdf"));
        assert_ne!(fletcher32(b"ab"), fletcher32(b"ba"), "order sensitive");
    }

    #[test]
    fn fletcher_detects_single_bit_flip() {
        let data = b"openspace beacon frame".to_vec();
        let base = fletcher32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(fletcher32(&corrupted), base, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.u32(5);
        assert_eq!(w.len(), 4);
    }
}
