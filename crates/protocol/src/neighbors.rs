//! Beacon-driven neighbour discovery.
//!
//! §2.1–2.2: satellites "broadcast their presence, and share their ISL
//! specifications" via periodic beacons; receivers evaluate beacons to
//! pick association and pairing candidates. This module is the
//! receiver-side state: a table of recently heard neighbours with
//! capability data, staleness expiry, and a pairing-candidate query.
//!
//! The table is protocol-level: it stores what the wire said, not what
//! orbital mechanics predicts. (The routing layer cross-references the
//! carried orbital elements for geometry.)

use crate::beacon::Beacon;
use crate::types::{Capabilities, OperatorId, SatelliteId};
use std::collections::BTreeMap;

/// One tracked neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The neighbour's last beacon, as received.
    pub beacon: Beacon,
    /// Local receive time of the last beacon (ms).
    pub last_heard_ms: u64,
    /// Number of beacons heard from this neighbour.
    pub beacons_heard: u64,
}

impl Neighbor {
    /// Capabilities from the latest beacon.
    pub fn capabilities(&self) -> Capabilities {
        self.beacon.capabilities
    }

    /// Owning operator from the latest beacon.
    pub fn operator(&self) -> OperatorId {
        self.beacon.operator
    }
}

/// A receiver's neighbour table.
#[derive(Debug, Default)]
pub struct NeighborTable {
    entries: BTreeMap<SatelliteId, Neighbor>,
    /// Entries not refreshed within this window are dropped (ms).
    ttl_ms: u64,
}

impl NeighborTable {
    /// A table whose entries expire `ttl_ms` after their last beacon.
    /// The OpenSpace default beacon period is 1 s; a TTL of a few
    /// periods tolerates loss without keeping ghosts.
    ///
    /// # Panics
    /// Panics if `ttl_ms == 0`.
    pub fn new(ttl_ms: u64) -> Self {
        assert!(ttl_ms > 0, "TTL must be positive");
        Self {
            entries: BTreeMap::new(),
            ttl_ms,
        }
    }

    /// Ingest a received beacon at local time `now_ms`. Re-hearing a
    /// neighbour refreshes its entry (capabilities may change — e.g. a
    /// laser terminal taken offline).
    pub fn observe(&mut self, beacon: Beacon, now_ms: u64) {
        self.entries
            .entry(beacon.satellite)
            .and_modify(|n| {
                n.beacon = beacon.clone();
                n.last_heard_ms = now_ms;
                n.beacons_heard += 1;
            })
            .or_insert(Neighbor {
                beacon,
                last_heard_ms: now_ms,
                beacons_heard: 1,
            });
    }

    /// Drop entries older than the TTL, returning how many expired.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let ttl = self.ttl_ms;
        let before = self.entries.len();
        self.entries
            .retain(|_, n| now_ms.saturating_sub(n.last_heard_ms) <= ttl);
        before - self.entries.len()
    }

    /// Look up a neighbour.
    pub fn get(&self, id: SatelliteId) -> Option<&Neighbor> {
        self.entries.get(&id)
    }

    /// All live neighbours at `now_ms` (expired entries are filtered even
    /// before an [`expire`](Self::expire) sweep), in id order.
    pub fn active(&self, now_ms: u64) -> Vec<&Neighbor> {
        self.entries
            .values()
            .filter(|n| now_ms.saturating_sub(n.last_heard_ms) <= self.ttl_ms)
            .collect()
    }

    /// Live neighbours that could sustain an optical ISL with a local
    /// node of `local_caps` — the §2.1 pairing-candidate shortlist.
    pub fn optical_candidates(&self, local_caps: Capabilities, now_ms: u64) -> Vec<SatelliteId> {
        self.active(now_ms)
            .into_iter()
            .filter(|n| {
                matches!(
                    local_caps.common_link(n.capabilities()),
                    Some(crate::types::LinkTechnology::Optical)
                )
            })
            .map(|n| n.beacon.satellite)
            .collect()
    }

    /// Number of entries (including any not yet expired-swept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(id: u64, caps: Capabilities) -> Beacon {
        Beacon {
            satellite: SatelliteId(id),
            operator: OperatorId((id % 4) as u32 + 1),
            capabilities: caps,
            timestamp_ms: 0,
            semi_major_axis_m: 7.158e6,
            eccentricity: 0.0,
            inclination_rad: 1.5,
            raan_rad: 0.0,
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: 0.0,
        }
    }

    #[test]
    fn observe_and_get() {
        let mut t = NeighborTable::new(3_000);
        t.observe(beacon(1, Capabilities::rf_only()), 100);
        let n = t.get(SatelliteId(1)).unwrap();
        assert_eq!(n.beacons_heard, 1);
        assert_eq!(n.last_heard_ms, 100);
        assert!(t.get(SatelliteId(2)).is_none());
    }

    #[test]
    fn rehearing_refreshes_and_counts() {
        let mut t = NeighborTable::new(3_000);
        t.observe(beacon(1, Capabilities::rf_only()), 100);
        t.observe(beacon(1, Capabilities::rf_and_optical()), 1_100);
        let n = t.get(SatelliteId(1)).unwrap();
        assert_eq!(n.beacons_heard, 2);
        assert_eq!(n.last_heard_ms, 1_100);
        // The capability upgrade is visible.
        assert!(n.capabilities().has_optical());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_sweep_drops_stale_entries() {
        let mut t = NeighborTable::new(3_000);
        t.observe(beacon(1, Capabilities::rf_only()), 0);
        t.observe(beacon(2, Capabilities::rf_only()), 2_500);
        let dropped = t.expire(5_000);
        assert_eq!(dropped, 1);
        assert!(t.get(SatelliteId(1)).is_none());
        assert!(t.get(SatelliteId(2)).is_some());
    }

    #[test]
    fn active_filters_without_sweeping() {
        let mut t = NeighborTable::new(1_000);
        t.observe(beacon(1, Capabilities::rf_only()), 0);
        t.observe(beacon(2, Capabilities::rf_only()), 900);
        assert_eq!(t.active(1_500).len(), 1);
        assert_eq!(t.len(), 2, "active() must not mutate");
    }

    #[test]
    fn boundary_ttl_is_inclusive() {
        let mut t = NeighborTable::new(1_000);
        t.observe(beacon(1, Capabilities::rf_only()), 0);
        assert_eq!(t.active(1_000).len(), 1);
        assert_eq!(t.active(1_001).len(), 0);
    }

    #[test]
    fn optical_candidates_require_both_sides() {
        let mut t = NeighborTable::new(10_000);
        t.observe(beacon(1, Capabilities::rf_only()), 0);
        t.observe(beacon(2, Capabilities::rf_and_optical()), 0);
        t.observe(beacon(3, Capabilities::rf_and_optical()), 0);
        // Local node has lasers: candidates are 2 and 3.
        let c = t.optical_candidates(Capabilities::rf_and_optical(), 10);
        assert_eq!(c, vec![SatelliteId(2), SatelliteId(3)]);
        // Local node RF-only: no optical candidates at all.
        assert!(t.optical_candidates(Capabilities::rf_only(), 10).is_empty());
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut t = NeighborTable::new(10_000);
        for id in [5u64, 1, 9, 3] {
            t.observe(beacon(id, Capabilities::rf_only()), 0);
        }
        let ids: Vec<u64> = t.active(1).iter().map(|n| n.beacon.satellite.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_panics() {
        NeighborTable::new(0);
    }
}
