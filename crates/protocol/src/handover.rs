//! Satellite handover signaling.
//!
//! §2.2: "the satellite uses advance knowledge of orbital trajectories to
//! pick a successor … The satellite communicates specifics of its
//! successor to the user, who establishes a new session with the
//! successor. This eliminates the need to run authentication and
//! association protocols again, ensuring a smooth handoff."
//!
//! The serving satellite sends [`HandoverPrepare`] (successor identity,
//! time, and a session token derived from the user's certificate); the
//! user presents [`HandoverCommit`] with the token to the successor. The
//! successor validates the token against the user's certificate tag — no
//! home-AAA round trip.

use crate::certificate::Certificate;
use crate::crypto::{compute_tag, SharedSecret, Tag};
use crate::types::{SatelliteId, UserId};
use crate::wire::{Reader, WireError, Writer};

/// Handover preparation: serving satellite → user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoverPrepare {
    /// The user being handed over.
    pub user: UserId,
    /// Current serving satellite.
    pub serving: SatelliteId,
    /// Chosen successor satellite.
    pub successor: SatelliteId,
    /// When the handover takes effect (ms since epoch).
    pub effective_at_ms: u64,
    /// Session continuation token the successor will honor.
    pub session_token: Tag,
}

impl HandoverPrepare {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.user.0);
        w.u64(self.serving.0);
        w.u64(self.successor.0);
        w.u64(self.effective_at_ms);
        w.bytes(&self.session_token.0);
    }

    /// Parse and validate the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let user = UserId(r.u64()?);
        let serving = SatelliteId(r.u64()?);
        let successor = SatelliteId(r.u64()?);
        if serving == successor {
            return Err(WireError::IllegalField { field: "successor" });
        }
        Ok(Self {
            user,
            serving,
            successor,
            effective_at_ms: r.u64()?,
            session_token: Tag(r.bytes::<16>()?),
        })
    }
}

/// Handover commit: user → successor satellite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoverCommit {
    /// The arriving user.
    pub user: UserId,
    /// The satellite it is arriving from.
    pub from: SatelliteId,
    /// The token from [`HandoverPrepare`].
    pub session_token: Tag,
}

impl HandoverCommit {
    /// Serialize the payload fields.
    pub fn encode_payload(&self, w: &mut Writer) {
        w.u64(self.user.0);
        w.u64(self.from.0);
        w.bytes(&self.session_token.0);
    }

    /// Parse the payload fields.
    pub fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            user: UserId(r.u64()?),
            from: SatelliteId(r.u64()?),
            session_token: Tag(r.bytes::<16>()?),
        })
    }
}

/// Derive the session token binding (user certificate, successor, time).
///
/// Both the serving satellite (to mint) and the successor (to check)
/// compute this from the federation secret of the user's home operator —
/// which every federation member holds — so no extra key distribution is
/// needed at handover time.
pub fn derive_session_token(
    certificate: &Certificate,
    successor: SatelliteId,
    effective_at_ms: u64,
    federation_secret: &SharedSecret,
) -> Tag {
    let mut data = [0u8; 40];
    data[..16].copy_from_slice(&certificate.tag.0);
    data[16..24].copy_from_slice(&certificate.user.0.to_be_bytes());
    data[24..32].copy_from_slice(&successor.0.to_be_bytes());
    data[32..40].copy_from_slice(&effective_at_ms.to_be_bytes());
    compute_tag(federation_secret, &data)
}

/// Successor-side validation of an arriving commit.
pub fn validate_commit(
    commit: &HandoverCommit,
    certificate: &Certificate,
    successor: SatelliteId,
    effective_at_ms: u64,
    federation_secret: &SharedSecret,
    now_ms: u64,
) -> bool {
    certificate.user == commit.user
        && certificate.verify(federation_secret, now_ms)
        && derive_session_token(certificate, successor, effective_at_ms, federation_secret)
            == commit.session_token
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OperatorId;

    fn fed() -> SharedSecret {
        SharedSecret::derive(1, "federation")
    }

    fn cert() -> Certificate {
        Certificate::issue(UserId(9), OperatorId(1), 0, 100_000, &fed())
    }

    #[test]
    fn prepare_round_trip() {
        let p = HandoverPrepare {
            user: UserId(9),
            serving: SatelliteId(1),
            successor: SatelliteId(2),
            effective_at_ms: 15_000,
            session_token: derive_session_token(&cert(), SatelliteId(2), 15_000, &fed()),
        };
        let mut w = Writer::default();
        p.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            HandoverPrepare::decode_payload(&mut Reader::new(&b)).unwrap(),
            p
        );
    }

    #[test]
    fn self_handover_rejected() {
        let p = HandoverPrepare {
            user: UserId(9),
            serving: SatelliteId(1),
            successor: SatelliteId(1),
            effective_at_ms: 0,
            session_token: Tag([0; 16]),
        };
        let mut w = Writer::default();
        p.encode_payload(&mut w);
        let b = w.into_bytes();
        assert!(HandoverPrepare::decode_payload(&mut Reader::new(&b)).is_err());
    }

    #[test]
    fn commit_round_trip() {
        let c = HandoverCommit {
            user: UserId(9),
            from: SatelliteId(1),
            session_token: Tag([7; 16]),
        };
        let mut w = Writer::default();
        c.encode_payload(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            HandoverCommit::decode_payload(&mut Reader::new(&b)).unwrap(),
            c
        );
    }

    #[test]
    fn valid_commit_accepted_by_successor() {
        let certificate = cert();
        let token = derive_session_token(&certificate, SatelliteId(2), 15_000, &fed());
        let commit = HandoverCommit {
            user: UserId(9),
            from: SatelliteId(1),
            session_token: token,
        };
        assert!(validate_commit(
            &commit,
            &certificate,
            SatelliteId(2),
            15_000,
            &fed(),
            15_001
        ));
    }

    #[test]
    fn token_bound_to_successor() {
        let certificate = cert();
        let token = derive_session_token(&certificate, SatelliteId(2), 15_000, &fed());
        let commit = HandoverCommit {
            user: UserId(9),
            from: SatelliteId(1),
            session_token: token,
        };
        // Presented to the wrong satellite: fails.
        assert!(!validate_commit(
            &commit,
            &certificate,
            SatelliteId(3),
            15_000,
            &fed(),
            15_001
        ));
    }

    #[test]
    fn token_bound_to_time() {
        let certificate = cert();
        let token = derive_session_token(&certificate, SatelliteId(2), 15_000, &fed());
        let commit = HandoverCommit {
            user: UserId(9),
            from: SatelliteId(1),
            session_token: token,
        };
        assert!(!validate_commit(
            &commit,
            &certificate,
            SatelliteId(2),
            16_000,
            &fed(),
            15_001
        ));
    }

    #[test]
    fn expired_certificate_blocks_handover() {
        let certificate = cert();
        let token = derive_session_token(&certificate, SatelliteId(2), 15_000, &fed());
        let commit = HandoverCommit {
            user: UserId(9),
            from: SatelliteId(1),
            session_token: token,
        };
        assert!(!validate_commit(
            &commit,
            &certificate,
            SatelliteId(2),
            15_000,
            &fed(),
            200_000 // after expiry
        ));
    }

    #[test]
    fn wrong_user_blocks_handover() {
        let certificate = cert();
        let token = derive_session_token(&certificate, SatelliteId(2), 15_000, &fed());
        let commit = HandoverCommit {
            user: UserId(10),
            from: SatelliteId(1),
            session_token: token,
        };
        assert!(!validate_commit(
            &commit,
            &certificate,
            SatelliteId(2),
            15_000,
            &fed(),
            15_001
        ));
    }
}
