//! A minimal JSON value, writer, and parser.
//!
//! The workspace is in-tree-only (no crates.io), so manifests are
//! serialized by hand. The subset implemented is exactly what
//! [`RunManifest`](crate::manifest::RunManifest) needs: objects keep
//! their field order (we feed them sorted), numbers print via Rust's
//! shortest-roundtrip `Display` for `f64` (deterministic for identical
//! bits), and the parser exists so tests and tools can validate that a
//! dump round-trips.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite float. NaN/infinity are rejected at write time.
    Num(f64),
    /// An unsigned integer (kept apart from `Num` so counters print
    /// without a decimal point and round-trip exactly).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; field order is preserved as given.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs with `&str` keys.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, JsonValue)>) -> Self {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Field lookup on an object; `None` on other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`Num` or `Uint`), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Uint(x) => Some(*x as f64),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    /// Compact single-line JSON (one space after `:` and `,` for
    /// legibility). Non-finite floats serialize as `null` — the
    /// deterministic sections never contain them by construction.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // Always keep a float distinguishable from an int so
                    // the type survives a round-trip.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::Uint(x) => write!(f, "{x}"),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected {lit}"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b => {
                    // Re-decode multi-byte UTF-8 sequences whole.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let Some(chunk) = self.bytes.get(start..start + len) else {
                            return self.err("truncated UTF-8");
                        };
                        let Ok(s) = std::str::from_utf8(chunk) else {
                            return self.err("invalid UTF-8");
                        };
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(JsonValue::Num(x)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'0'..=b'9' | b'-') => self.number(),
            Some(b) => self.err(format!("unexpected byte {:?}", b as char)),
            None => self.err("unexpected end of input"),
        }
    }
}

/// Parse a JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_objects_in_given_order() {
        let v = JsonValue::object([
            ("b", JsonValue::Uint(2)),
            ("a", JsonValue::Str("x\"y".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"b": 2, "a": "x\"y"}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::Num(3.0).to_string(), "3.0");
        assert_eq!(JsonValue::Num(0.25).to_string(), "0.25");
        assert_eq!(JsonValue::Uint(3).to_string(), "3");
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn round_trips() {
        let v = JsonValue::object([
            ("name", JsonValue::Str("exp \u{2603} \n".into())),
            ("n", JsonValue::Uint(42)),
            ("x", JsonValue::Num(0.125)),
            ("flag", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "arr",
                JsonValue::Array(vec![JsonValue::Uint(1), JsonValue::Num(2.5)]),
            ),
            ("obj", JsonValue::object([("k", JsonValue::Uint(7))])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_external_whitespace_and_escapes() {
        let v = parse("  {\n \"a\" : [ 1 , -2.5, \"\\u0041\\t\" ] }  ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Uint(1),
                JsonValue::Num(-2.5),
                JsonValue::Str("A\t".into()),
            ]))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nulll").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"s": "hi", "n": 3, "x": 1.5}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("hi"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("s"), None);
    }
}
