//! # openspace-telemetry
//!
//! Deterministic observability for the OpenSpace stack: metric
//! recorders, spans, and machine-readable run manifests.
//!
//! The paper's §3 cost model rests on *cross-verifiable per-party
//! ledgers* — the architecture assumes first-class, auditable
//! instrumentation. This crate is that discipline applied to the
//! reproduction itself: every simulation layer can report what it did
//! (counters, gauges, histograms, spans) through a [`Recorder`], and
//! every experiment binary can emit a [`RunManifest`] describing the
//! run (seed, config digest, metrics, per-phase wall clock).
//!
//! ## Determinism contract
//!
//! With a fixed seed, the **deterministic section** of a metric dump is
//! bit-identical between serial and parallel execution and across
//! worker counts:
//!
//! * [`MemoryRecorder`] keeps every key space in `BTreeMap`s, so dump
//!   order never depends on insertion or hashing order.
//! * [`MemoryRecorder::merge`] *replays* the other recorder's samples
//!   in order, so merging per-task recorders in task order produces the
//!   same bits as one recorder fed sequentially.
//! * Wall-clock time is quarantined: span wall durations and phase
//!   timings only ever appear in the manifest's non-deterministic
//!   `wall` section, never in
//!   [`deterministic_json`](MemoryRecorder::deterministic_json).
//!
//! [`NullRecorder`] is the default everywhere instrumentation is
//! threaded through hot paths: every method is an empty body behind a
//! `&mut dyn` call, so uninstrumented runs stay within measurement
//! noise of the pre-instrumentation baseline (asserted by the
//! `kernels` bench).
//!
//! ## Example
//!
//! ```
//! use openspace_telemetry::prelude::*;
//!
//! let mut rec = MemoryRecorder::new();
//! rec.add("packets.delivered", 3);
//! rec.observe("latency_s", 0.012);
//! rec.gauge_max("queue.depth", 17.0);
//!
//! let mut manifest = RunManifest::new("example", 42);
//! manifest.digest_config("flows=1 duration=30");
//! manifest.metrics.merge(&rec);
//! let json = manifest.to_json();
//! assert!(json.contains("\"experiment\": \"example\""));
//! ```

pub mod json;
pub mod manifest;
pub mod recorder;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::json::JsonValue;
    pub use crate::manifest::{fnv1a_64, RunManifest};
    pub use crate::recorder::{MemoryRecorder, NullRecorder, Recorder, SpanTimer};
}

pub use json::JsonValue;
pub use manifest::RunManifest;
pub use recorder::{MemoryRecorder, NullRecorder, Recorder, SpanTimer};
