//! The [`Recorder`] trait and its three implementations.
//!
//! Instrumented code paths take `&mut dyn Recorder` and call it with
//! string keys. Keys are dot-separated, lowercase, and stable — they are
//! the public schema of the metric dump (see DESIGN.md §4,
//! "Observability").
//!
//! * [`NullRecorder`] — every method is an empty body; the compiler
//!   reduces instrumentation to a virtual call that does nothing.
//! * [`MemoryRecorder`] — in-process aggregation with a deterministic
//!   dump and a replay-based [`merge`](MemoryRecorder::merge) so
//!   per-worker recorders fold into the same bits a serial run
//!   produces.
//! * [`JsonlExporter`](crate::manifest::jsonl_lines) — one JSON line
//!   per metric, derived from a `MemoryRecorder`.

use crate::json::JsonValue;
use openspace_sim::stats::Summary;
use std::collections::BTreeMap;
use std::time::Instant;

/// Sink for instrumentation events.
///
/// All methods take `&mut self`: instrumented layers are
/// single-threaded (parallelism happens at the level of independent
/// tasks, each with its own recorder — see
/// [`openspace_sim::exec::parallel_map_seeded`]).
pub trait Recorder {
    /// Whether records are kept. Hot paths may skip building dynamic
    /// keys (e.g. per-flow histogram names) when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Increment the monotonic counter `key` by `delta`.
    fn add(&mut self, key: &str, delta: u64);

    /// Set the gauge `key` to `value` (last write wins).
    fn gauge(&mut self, key: &str, value: f64);

    /// Raise the high-water mark `key` to `value` if higher.
    fn gauge_max(&mut self, key: &str, value: f64);

    /// Add one sample to the histogram `key`.
    fn observe(&mut self, key: &str, value: f64);

    /// Record one completed span: `wall_s` of wall-clock time and
    /// `sim_s` of simulated time under `key`. Wall time lands in the
    /// non-deterministic section of dumps; sim time is deterministic.
    fn span(&mut self, key: &str, wall_s: f64, sim_s: f64);
}

/// The no-op recorder instrumented paths use by default.
///
/// Every method body is empty, so the cost of instrumentation on an
/// unrecorded run is one virtual call per event — within measurement
/// noise on the netsim kernel (see `benches/kernels.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&mut self, _key: &str, _delta: u64) {}
    fn gauge(&mut self, _key: &str, _value: f64) {}
    fn gauge_max(&mut self, _key: &str, _value: f64) {}
    fn observe(&mut self, _key: &str, _value: f64) {}
    fn span(&mut self, _key: &str, _wall_s: f64, _sim_s: f64) {}
}

/// Aggregated wall/sim time of one span key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed spans under this key.
    pub count: u64,
    /// Total wall-clock seconds (non-deterministic).
    pub wall_s: f64,
    /// Total simulated seconds (deterministic).
    pub sim_s: f64,
}

/// In-process aggregation with a deterministic dump.
///
/// Every key space lives in a `BTreeMap`, so iteration (and therefore
/// the JSON dump) is ordered by key, independent of insertion order.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    maxima: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Summary>,
    spans: BTreeMap<String, SpanAgg>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter value; 0 when never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// High-water mark, if ever raised.
    pub fn maximum(&self, key: &str) -> Option<f64> {
        self.maxima.get(key).copied()
    }

    /// Histogram under `key`, if any sample was observed.
    pub fn histogram(&self, key: &str) -> Option<&Summary> {
        self.histograms.get(key)
    }

    /// Span aggregate under `key`, if any span completed.
    pub fn span_agg(&self, key: &str) -> Option<SpanAgg> {
        self.spans.get(key).copied()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.maxima.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Fold `other` into `self`.
    ///
    /// Merging per-task recorders **in task order** yields bit-identical
    /// aggregates to a single recorder fed the same events serially:
    /// counters add exactly (integers), maxima take `f64::max`
    /// (exact), gauges last-write-win (the later task overwrites), and
    /// histograms *replay* the other recorder's samples through
    /// [`Summary::merge`] rather than combining moments with Chan's
    /// formula, which would round differently than sequential
    /// accumulation.
    pub fn merge(&mut self, other: &MemoryRecorder) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.maxima {
            let slot = self.maxima.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(*v);
        }
        for (k, s) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(s);
        }
        for (k, s) in &other.spans {
            let slot = self.spans.entry(k.clone()).or_default();
            slot.count += s.count;
            slot.wall_s += s.wall_s;
            slot.sim_s += s.sim_s;
        }
    }

    /// The deterministic section of the dump: counters, gauges, maxima,
    /// histogram summaries, and span counts + sim time. No wall-clock
    /// field appears here; with a fixed seed this value is bit-identical
    /// across worker counts.
    pub fn deterministic_json(&mut self) -> JsonValue {
        let counters: Vec<(String, JsonValue)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Uint(*v)))
            .collect();
        let gauges: Vec<(String, JsonValue)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
            .collect();
        let maxima: Vec<(String, JsonValue)> = self
            .maxima
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
            .collect();
        let histograms: Vec<(String, JsonValue)> = self
            .histograms
            .iter_mut()
            .map(|(k, s)| {
                let body = JsonValue::object([
                    ("count", JsonValue::Uint(s.count() as u64)),
                    ("mean", JsonValue::Num(s.mean())),
                    ("min", JsonValue::Num(s.min())),
                    ("max", JsonValue::Num(s.max())),
                    ("p50", JsonValue::Num(s.median())),
                    ("p95", JsonValue::Num(s.p95())),
                    ("p99", JsonValue::Num(s.p99())),
                ]);
                (k.clone(), body)
            })
            .collect();
        let spans: Vec<(String, JsonValue)> = self
            .spans
            .iter()
            .map(|(k, s)| {
                let body = JsonValue::object([
                    ("count", JsonValue::Uint(s.count)),
                    ("sim_s", JsonValue::Num(s.sim_s)),
                ]);
                (k.clone(), body)
            })
            .collect();
        JsonValue::Object(vec![
            ("counters".into(), JsonValue::Object(counters)),
            ("gauges".into(), JsonValue::Object(gauges)),
            ("maxima".into(), JsonValue::Object(maxima)),
            ("histograms".into(), JsonValue::Object(histograms)),
            ("spans".into(), JsonValue::Object(spans)),
        ])
    }

    /// The non-deterministic wall-clock section: total wall seconds per
    /// span key. Kept apart from [`deterministic_json`] by contract.
    ///
    /// [`deterministic_json`]: MemoryRecorder::deterministic_json
    pub fn wall_json(&self) -> JsonValue {
        let spans: Vec<(String, JsonValue)> = self
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), JsonValue::Num(s.wall_s)))
            .collect();
        JsonValue::Object(spans)
    }
}

impl Recorder for MemoryRecorder {
    fn add(&mut self, key: &str, delta: u64) {
        match self.counters.get_mut(key) {
            Some(v) => *v += delta,
            None => {
                self.counters.insert(key.to_owned(), delta);
            }
        }
    }

    fn gauge(&mut self, key: &str, value: f64) {
        match self.gauges.get_mut(key) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(key.to_owned(), value);
            }
        }
    }

    fn gauge_max(&mut self, key: &str, value: f64) {
        match self.maxima.get_mut(key) {
            Some(v) => *v = v.max(value),
            None => {
                self.maxima.insert(key.to_owned(), value);
            }
        }
    }

    fn observe(&mut self, key: &str, value: f64) {
        match self.histograms.get_mut(key) {
            Some(s) => s.add(value),
            None => {
                let mut s = Summary::new();
                s.add(value);
                self.histograms.insert(key.to_owned(), s);
            }
        }
    }

    fn span(&mut self, key: &str, wall_s: f64, sim_s: f64) {
        if !self.spans.contains_key(key) {
            self.spans.insert(key.to_owned(), SpanAgg::default());
        }
        let slot = self.spans.get_mut(key).expect("just ensured present");
        slot.count += 1;
        slot.wall_s += wall_s;
        slot.sim_s += sim_s;
    }
}

/// Times a span: captures the wall clock (and optionally a sim-time
/// origin) at construction, reports into a [`Recorder`] on
/// [`finish`](SpanTimer::finish).
///
/// ```
/// use openspace_telemetry::prelude::*;
/// let mut rec = MemoryRecorder::new();
/// let t = SpanTimer::start(0.0);
/// // ... do work, advancing sim time to 12.5 ...
/// t.finish(&mut rec, "phase.route", 12.5);
/// assert_eq!(rec.span_agg("phase.route").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    started: Instant,
    sim_start_s: f64,
}

impl SpanTimer {
    /// Start timing at sim time `sim_start_s` (use 0.0 when the span
    /// has no simulated extent).
    pub fn start(sim_start_s: f64) -> Self {
        Self {
            started: Instant::now(),
            sim_start_s,
        }
    }

    /// Record the completed span under `key`, ending at sim time
    /// `sim_end_s`.
    pub fn finish(self, rec: &mut dyn Recorder, key: &str, sim_end_s: f64) {
        rec.span(
            key,
            self.started.elapsed().as_secs_f64(),
            sim_end_s - self.sim_start_s,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(rec: &mut dyn Recorder) {
        rec.add("c.events", 2);
        rec.add("c.events", 3);
        rec.gauge("g.ratio", 0.5);
        rec.gauge_max("m.depth", 4.0);
        rec.gauge_max("m.depth", 2.0);
        for x in [1.0, 2.0, 3.0] {
            rec.observe("h.latency", x);
        }
        rec.span("s.run", 0.001, 30.0);
    }

    #[test]
    fn memory_recorder_aggregates() {
        let mut rec = MemoryRecorder::new();
        feed(&mut rec);
        assert_eq!(rec.counter("c.events"), 5);
        assert_eq!(rec.gauge_value("g.ratio"), Some(0.5));
        assert_eq!(rec.maximum("m.depth"), Some(4.0));
        assert_eq!(rec.histogram("h.latency").unwrap().count(), 3);
        let s = rec.span_agg("s.run").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.sim_s, 30.0);
    }

    #[test]
    fn null_recorder_is_silent_and_disabled() {
        let mut rec = NullRecorder;
        feed(&mut rec);
        assert!(!rec.enabled());
    }

    #[test]
    fn unknown_keys_read_as_empty() {
        let rec = MemoryRecorder::new();
        assert_eq!(rec.counter("nope"), 0);
        assert_eq!(rec.gauge_value("nope"), None);
        assert_eq!(rec.maximum("nope"), None);
        assert!(rec.histogram("nope").is_none());
        assert!(rec.is_empty());
    }

    #[test]
    fn merge_equals_sequential_feed_bitwise() {
        // One recorder fed a+b sequentially...
        let mut serial = MemoryRecorder::new();
        feed(&mut serial);
        feed(&mut serial);
        // ...must match two recorders merged in order, bit for bit.
        let mut a = MemoryRecorder::new();
        let mut b = MemoryRecorder::new();
        feed(&mut a);
        feed(&mut b);
        a.merge(&b);
        assert_eq!(
            serial.deterministic_json().to_string(),
            a.deterministic_json().to_string()
        );
    }

    #[test]
    fn merge_gauge_is_last_write_wins() {
        let mut a = MemoryRecorder::new();
        let mut b = MemoryRecorder::new();
        a.gauge("g", 1.0);
        b.gauge("g", 2.0);
        a.merge(&b);
        assert_eq!(a.gauge_value("g"), Some(2.0));
    }

    #[test]
    fn deterministic_json_is_sorted_and_stable() {
        let mut a = MemoryRecorder::new();
        a.add("z.last", 1);
        a.add("a.first", 1);
        let dump = a.deterministic_json().to_string();
        let za = dump.find("z.last").unwrap();
        let aa = dump.find("a.first").unwrap();
        assert!(aa < za, "keys must dump in sorted order");
    }

    #[test]
    fn wall_time_never_reaches_the_deterministic_dump() {
        let mut a = MemoryRecorder::new();
        a.span("s", 123.456, 1.0);
        let det = a.deterministic_json().to_string();
        assert!(!det.contains("123.456"), "wall leaked: {det}");
        let wall = a.wall_json().to_string();
        assert!(wall.contains("123.456"));
    }

    #[test]
    fn span_timer_reports_both_clocks() {
        let mut rec = MemoryRecorder::new();
        let t = SpanTimer::start(10.0);
        t.finish(&mut rec, "s", 40.0);
        let agg = rec.span_agg("s").unwrap();
        assert_eq!(agg.sim_s, 30.0);
        assert!(agg.wall_s >= 0.0);
    }
}
