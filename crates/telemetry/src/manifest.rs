//! Machine-readable run manifests.
//!
//! Every `exp_*` binary can describe its run as a [`RunManifest`]:
//! what experiment ran, under which seed and config, what the metrics
//! were, and how long each phase took. The schema splits cleanly into a
//! **deterministic** part (bit-identical for a fixed seed, any worker
//! count) and a **wall** part (threads, phase timings, span wall time)
//! that is honest about being machine-dependent.
//!
//! Schema (`openspace.run_manifest.v1`):
//!
//! ```json
//! {
//!   "schema": "openspace.run_manifest.v1",
//!   "experiment": "exp_fault",
//!   "seed": 42,
//!   "config_digest": "fnv1a64:9cbfb33a9e9f7035",
//!   "metrics": {"counters": {}, "gauges": {}, "maxima": {},
//!               "histograms": {}, "spans": {}},
//!   "extra": {},
//!   "wall": {"threads": 8, "phases": [{"name": "sweep", "wall_s": 0.5}],
//!            "span_wall_s": {}}
//! }
//! ```
//!
//! Everything above `"wall"` is deterministic; `"wall"` is not.

use crate::json::JsonValue;
use crate::recorder::MemoryRecorder;

/// FNV-1a 64-bit hash — the config digest function. Stable across
/// platforms and runs; collisions are irrelevant at "did the config
/// change" granularity.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Wall-clock duration of one named experiment phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name, unique within a run.
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub wall_s: f64,
}

/// A complete description of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Experiment name (the binary name by convention).
    pub experiment: String,
    /// Root seed of the run.
    pub seed: u64,
    /// `fnv1a64:<hex>` digest of the run's configuration description;
    /// empty until [`digest_config`](RunManifest::digest_config).
    pub config_digest: String,
    /// Aggregated metrics (deterministic section, minus span wall time).
    pub metrics: MemoryRecorder,
    /// Experiment-specific deterministic extras (e.g. `exp_fault`'s
    /// availability/MTTR fault block), dumped in insertion order.
    pub extra: Vec<(String, JsonValue)>,
    /// Worker threads the run used (wall section).
    pub threads: usize,
    /// Per-phase wall-clock timings (wall section).
    pub phases: Vec<PhaseTiming>,
}

impl RunManifest {
    /// An empty manifest for `experiment` under `seed`.
    pub fn new(experiment: &str, seed: u64) -> Self {
        Self {
            experiment: experiment.to_owned(),
            seed,
            ..Self::default()
        }
    }

    /// Set the config digest from a human-readable description of every
    /// input that shapes the run (sizes, durations, rates, flags). Two
    /// runs with the same digest claim to be comparable.
    pub fn digest_config(&mut self, description: &str) {
        self.config_digest = format!("fnv1a64:{:016x}", fnv1a_64(description.as_bytes()));
    }

    /// Append a phase timing (wall section).
    pub fn push_phase(&mut self, name: &str, wall_s: f64) {
        self.phases.push(PhaseTiming {
            name: name.to_owned(),
            wall_s,
        });
    }

    /// Attach a deterministic extra block.
    pub fn push_extra(&mut self, key: &str, value: JsonValue) {
        self.extra.push((key.to_owned(), value));
    }

    /// The deterministic section only, as a compact JSON string. Two
    /// runs of the same experiment with the same seed and config must
    /// produce byte-identical output here, regardless of worker count.
    pub fn deterministic_json(&mut self) -> String {
        self.deterministic_value().to_string()
    }

    fn deterministic_value(&mut self) -> JsonValue {
        JsonValue::object([
            ("schema", JsonValue::Str("openspace.run_manifest.v1".into())),
            ("experiment", JsonValue::Str(self.experiment.clone())),
            ("seed", JsonValue::Uint(self.seed)),
            ("config_digest", JsonValue::Str(self.config_digest.clone())),
            ("metrics", self.metrics.deterministic_json()),
            ("extra", JsonValue::Object(self.extra.clone())),
        ])
    }

    /// The full manifest (deterministic section plus the `wall` block)
    /// as a compact JSON string — what `--json` prints to stdout.
    pub fn to_json(&mut self) -> String {
        let mut v = self.deterministic_value();
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                JsonValue::object([
                    ("name", JsonValue::Str(p.name.clone())),
                    ("wall_s", JsonValue::Num(p.wall_s)),
                ])
            })
            .collect();
        let wall = JsonValue::object([
            ("threads", JsonValue::Uint(self.threads as u64)),
            ("phases", JsonValue::Array(phases)),
            ("span_wall_s", self.metrics.wall_json()),
        ]);
        if let JsonValue::Object(fields) = &mut v {
            fields.push(("wall".into(), wall));
        }
        v.to_string()
    }
}

/// Serialize a recorder as JSON Lines: one self-describing object per
/// metric, deterministic section first (sorted keys within each kind),
/// then one `span_wall` line per span. Suitable for appending runs to a
/// log file that `jq`/pandas can ingest.
pub fn jsonl_lines(rec: &mut MemoryRecorder) -> Vec<String> {
    let mut lines = Vec::new();
    let det = rec.deterministic_json();
    let JsonValue::Object(sections) = det else {
        unreachable!("deterministic dump is an object");
    };
    for (section, body) in &sections {
        let JsonValue::Object(entries) = body else {
            continue;
        };
        // Section names are plural ("counters"); each line carries the
        // singular kind tag.
        let kind = section.trim_end_matches('s');
        for (key, value) in entries {
            lines.push(
                JsonValue::object([
                    ("kind", JsonValue::Str(kind.to_owned())),
                    ("key", JsonValue::Str(key.clone())),
                    ("value", value.clone()),
                ])
                .to_string(),
            );
        }
    }
    let JsonValue::Object(walls) = rec.wall_json() else {
        unreachable!("wall dump is an object");
    };
    for (key, value) in walls {
        lines.push(
            JsonValue::object([
                ("kind", JsonValue::Str("span_wall".into())),
                ("key", JsonValue::Str(key)),
                ("value", value),
            ])
            .to_string(),
        );
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::recorder::Recorder;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("exp_test", 7);
        m.digest_config("n=3 duration=10");
        m.metrics.add("pkts", 12);
        m.metrics.observe("lat", 0.5);
        m.metrics.span("run", 0.25, 10.0);
        m.threads = 4;
        m.push_phase("sweep", 0.125);
        m.push_extra(
            "fault",
            JsonValue::object([("mttr_s", JsonValue::Num(3.0))]),
        );
        m
    }

    #[test]
    fn manifest_has_required_keys_and_parses() {
        let mut m = sample_manifest();
        let v = parse(&m.to_json()).unwrap();
        for key in [
            "schema",
            "experiment",
            "seed",
            "config_digest",
            "metrics",
            "extra",
            "wall",
        ] {
            assert!(v.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("openspace.run_manifest.v1")
        );
        assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(7.0));
        let wall = v.get("wall").unwrap();
        assert_eq!(wall.get("threads").and_then(JsonValue::as_f64), Some(4.0));
        let extra = v.get("extra").unwrap();
        assert_eq!(
            extra
                .get("fault")
                .and_then(|f| f.get("mttr_s"))
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn deterministic_json_excludes_wall_block() {
        let mut m = sample_manifest();
        let det = m.deterministic_json();
        assert!(!det.contains("\"wall\""));
        assert!(!det.contains("wall_s"));
        assert!(det.contains("\"sim_s\": 10.0"));
        parse(&det).unwrap();
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = RunManifest::new("x", 1);
        let mut b = RunManifest::new("x", 1);
        a.digest_config("cfg v1");
        b.digest_config("cfg v1");
        assert_eq!(a.config_digest, b.config_digest);
        b.digest_config("cfg v2");
        assert_ne!(a.config_digest, b.config_digest);
        assert!(a.config_digest.starts_with("fnv1a64:"));
    }

    #[test]
    fn jsonl_lines_cover_every_metric_and_parse() {
        let mut rec = MemoryRecorder::new();
        rec.add("c", 1);
        rec.gauge("g", 2.0);
        rec.gauge_max("m", 3.0);
        rec.observe("h", 4.0);
        rec.span("s", 0.5, 6.0);
        let lines = jsonl_lines(&mut rec);
        // counter, gauge, maximum, histogram, span, span_wall.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let v = parse(line).unwrap();
            assert!(v.get("kind").is_some());
            assert!(v.get("key").is_some());
            assert!(v.get("value").is_some());
        }
        assert!(lines.iter().any(|l| l.contains("\"span_wall\"")));
    }
}
