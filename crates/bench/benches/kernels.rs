//! Micro-benchmarks for the computational kernels behind every
//! experiment: orbit propagation, snapshot construction, routing,
//! coverage estimation, MAC simulation, wire codec, and settlement.
//!
//! These exist to keep the simulation substrate fast enough that the
//! experiment sweeps stay interactive, and to catch performance
//! regressions; the *scientific* outputs come from the `exp_*` binaries.
//!
//! Run: `cargo bench -p openspace-bench`
//!
//! Self-contained harness (no external bench framework): each kernel is
//! warmed up, then timed over enough iterations to exceed a fixed
//! measurement window, reporting mean wall-clock per iteration. Set
//! `OPENSPACE_BENCH_WINDOW_MS` to shrink the window (CI smoke runs use
//! a few milliseconds just to prove every kernel still executes).

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use openspace_core::study::{latency_vs_satellites, StudyConfig};
use openspace_economics::prelude::*;
use openspace_mac::prelude::*;
use openspace_net::prelude::*;
use openspace_orbit::prelude::*;
use openspace_protocol::prelude::*;

/// Time `f` for at least `window`, after a short warmup; returns mean
/// seconds per iteration.
fn bench(name: &str, window: Duration, mut f: impl FnMut()) {
    // Warmup: a few iterations to populate caches and branch predictors.
    let warmup_until = Instant::now() + window / 10;
    while Instant::now() < warmup_until {
        f();
    }
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < window {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  ({iters} iters)");
}

/// Measurement window per kernel: 300 ms by default, overridable down
/// to a smoke run via the `OPENSPACE_BENCH_WINDOW_MS` environment
/// variable.
fn window() -> Duration {
    static WINDOW: OnceLock<Duration> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        std::env::var("OPENSPACE_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300))
    })
}

fn iridium_props() -> Vec<Propagator> {
    walker_star(&iridium_params())
        .unwrap()
        .into_iter()
        .map(|e| Propagator::new(e, PerturbationModel::SecularJ2))
        .collect()
}

fn iridium_nodes() -> Vec<SatNode> {
    iridium_props()
        .into_iter()
        .enumerate()
        .map(|(i, p)| SatNode {
            propagator: p,
            operator: (i % 4) as u32,
            has_optical: false,
        })
        .collect()
}

fn bench_propagation() {
    let sats = iridium_props();
    bench("propagate_66_sats_one_epoch", window(), || {
        for s in &sats {
            black_box(s.position_eci(black_box(1234.5)));
        }
    });
    bench("kepler_solve_e0p1", window(), || {
        black_box(openspace_orbit::kepler::solve_kepler(black_box(2.7), 0.1));
    });
}

fn bench_snapshot() {
    let nodes = iridium_nodes();
    let stations: Vec<GroundNode> = [(48.0, 11.0), (-33.9, 18.4), (1.35, 103.8)]
        .iter()
        .map(|&(lat, lon)| GroundNode {
            position_ecef: geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)),
            operator: 9,
        })
        .collect();
    let params = SnapshotParams::default();
    bench("build_snapshot_iridium", window(), || {
        black_box(build_snapshot(black_box(0.0), &nodes, &stations, &params));
    });

    // Dense vs grid-gated candidate enumeration at a Starlink-shell
    // scale, where the O(n²) pair sweep matters, and an S-band-grade
    // 2000 km ISL range (the default 5000 km yields only ~3 grid cells
    // per axis over a 550 km shell, so adjacency barely discriminates).
    // Both kernels get the same params and the same precomputed
    // ephemeris, so the pair enumeration — the part the spatial grid
    // replaces — is the only difference; the property suite
    // (`snapshot_equivalence`) proves the graphs bitwise equal. The
    // grid tests ~8% of the 1.1M pairs; the gap understates that
    // because per-candidate LoS and capacity work is shared.
    let big_params = SnapshotParams {
        max_isl_range_m: 2_000_000.0,
        ..SnapshotParams::default()
    };
    let big =
        openspace_bench::random_sat_nodes(1500, 550_000.0, 53.0, 7, PerturbationModel::TwoBody);
    let t_s = 1_234.0;
    let samples: Vec<openspace_orbit::ephemeris::EphemerisSample> = big
        .iter()
        .map(|s| {
            let eci = s.propagator.position_eci(t_s);
            openspace_orbit::ephemeris::EphemerisSample {
                eci,
                ecef: eci_to_ecef(eci, t_s),
            }
        })
        .collect();
    bench("snapshot_dense_1500sats", window(), || {
        black_box(build_snapshot_from_samples_dense(
            &big,
            &samples,
            &stations,
            &big_params,
        ));
    });
    bench("snapshot_gated_1500sats", window(), || {
        black_box(build_snapshot_from_samples(
            &big,
            &samples,
            &stations,
            &big_params,
        ));
    });
}

fn bench_contact_scan() {
    // Dense vs horizon-skip contact scanning: the Iridium shell against
    // one mid-latitude site at a broadband-grade mask, where almost all
    // grid samples sit far below the horizon. The windows are bitwise
    // identical (see the `contact_equivalence` property suite); only the
    // number of propagations differs.
    let sats = iridium_nodes();
    let ground = geodetic_to_ecef(Geodetic::from_degrees(47.0, 8.0, 400.0));
    let mask = 25f64.to_radians();
    bench("contact_scan_dense_iridium_2h", window(), || {
        black_box(contact_plan_dense(
            &sats,
            black_box(ground),
            0.0,
            7_200.0,
            5.0,
            mask,
        ));
    });
    bench("contact_scan_gated_iridium_2h", window(), || {
        black_box(contact_plan(
            &sats,
            black_box(ground),
            0.0,
            7_200.0,
            5.0,
            mask,
        ));
    });
}

fn bench_routing() {
    let nodes = iridium_nodes();
    let params = SnapshotParams::default();
    let graph = build_snapshot(0.0, &nodes, &[], &params);
    bench("dijkstra_iridium_crossing", window(), || {
        black_box(shortest_path(
            &graph,
            black_box(0),
            black_box(35),
            latency_weight,
        ));
    });
    bench("yen_k4_iridium", window(), || {
        black_box(k_shortest_paths(&graph, 0, 35, 4, latency_weight));
    });
    let req = QosRequirement {
        min_bandwidth_bps: 1e5,
        max_latency_s: f64::INFINITY,
    };
    bench("qos_route_iridium", window(), || {
        black_box(qos_route(&graph, 0, 35, &req, 12_000.0));
    });

    // The replan-heavy shape: 64 flows leaving 4 gateway sources. The
    // baseline runs one early-exit Dijkstra per flow; the planner grows
    // one tree per distinct source and answers the rest from cache.
    let n = graph.node_count();
    let requests: Vec<(NodeId, NodeId)> = (0..64)
        .map(|i| (NodeId(i % 4), NodeId(4 + (i * 7) % (n - 4))))
        .collect();
    bench("route_64flows_4src_per_flow", window(), || {
        for &(s, d) in &requests {
            black_box(shortest_path(&graph, s, d, latency_weight));
        }
    });
    bench("route_64flows_4src_planner", window(), || {
        let mut planner = RoutePlanner::new();
        black_box(planner.plan(&graph, &requests, latency_weight));
    });
    bench("qos_64flows_4src_per_flow", window(), || {
        for &(s, d) in &requests {
            black_box(qos_route(&graph, s, d, &req, 12_000.0));
        }
    });
    bench("qos_64flows_4src_planner", window(), || {
        let mut planner = RoutePlanner::new();
        black_box(planner.plan_qos_recorded(
            &graph,
            &requests,
            &req,
            12_000.0,
            &mut openspace_telemetry::NullRecorder,
        ));
    });
}

fn bench_coverage() {
    let sats = iridium_props();
    let grid = SphereGrid::new(2000);
    bench("grid_coverage_2000pts_66sats", window(), || {
        black_box(grid_coverage_fraction(&grid, &sats, 0.0, 0.0));
    });
    bench("worst_case_coverage_66sats", window(), || {
        black_box(worst_case_coverage_fraction(&sats, 0.0, 0.0));
    });
}

fn bench_mac() {
    let params = MacParams::s_band_isl();
    for n in [4usize, 16] {
        bench(&format!("csma_sim_1s/{n}"), window(), || {
            black_box(simulate_csma_ca(&params, n, 1.0, 42));
        });
    }
}

fn bench_wire() {
    let frame = Frame {
        sender: 42,
        message: Message::Beacon(Beacon {
            satellite: SatelliteId(42),
            operator: OperatorId(7),
            capabilities: Capabilities::rf_and_optical(),
            timestamp_ms: 123,
            semi_major_axis_m: 7.158e6,
            eccentricity: 0.0,
            inclination_rad: 1.5,
            raan_rad: 0.5,
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: 2.2,
        }),
    };
    let bytes = frame.encode();
    bench("beacon_encode", window(), || {
        black_box(frame.encode());
    });
    bench("beacon_decode", window(), || {
        black_box(Frame::decode(black_box(&bytes)).unwrap());
    });
}

fn bench_economics() {
    // A thousand billing items across 4 operators.
    let mut ledgers = std::collections::BTreeMap::new();
    for op in 1u32..=4 {
        let mut l = TrafficLedger::new();
        for k in 0..250u64 {
            l.record_raw(
                BillingKey {
                    flow_id: k,
                    origin: OperatorId(1 + ((op + 1) % 4)),
                    carrier: OperatorId(op),
                    interval_start_ms: k * 60_000,
                },
                1_000_000 + k,
            );
        }
        ledgers.insert(OperatorId(op), l);
    }
    let prices = PriceBook::new(4.0);
    bench("settlement_1000_items", window(), || {
        black_box(SettlementMatrix::from_ledgers(&ledgers, &prices));
    });
    let la = ledgers.get(&OperatorId(1)).unwrap();
    let lb = ledgers.get(&OperatorId(2)).unwrap();
    bench("reconcile_pair", window(), || {
        black_box(reconcile(la, lb, OperatorId(1), OperatorId(2)));
    });
}

fn bench_extensions() {
    // DAMA MAC simulation.
    let dama = DamaParams::s_band_isl();
    bench("dama_sim_1s_8nodes", window(), || {
        black_box(simulate_dama(&dama, 8, 5e5, 1.0, 42));
    });

    // TLE parse.
    let el = OrbitalElements::circular(780_000.0, 86.4, 10.0, 20.0).unwrap();
    let (l1, l2) = elements_to_tle(10_001, "26001A", 2026, 185.5, &el);
    bench("tle_parse", window(), || {
        black_box(parse_tle(black_box(&l1), black_box(&l2)).unwrap());
    });

    // DTN earliest-arrival over a day-long single-sat plan.
    let sat = SatNode {
        propagator: Propagator::new(el, PerturbationModel::TwoBody),
        operator: 0,
        has_optical: false,
    };
    let st = GroundNode {
        position_ecef: geodetic_to_ecef(Geodetic::from_degrees(10.0, 20.0, 0.0)),
        operator: 0,
    };
    let contacts = openspace_net::dtn::sample_contacts(
        &[sat],
        &[st],
        0.0,
        86_400.0,
        60.0,
        &SnapshotParams::default(),
    );
    bench("dtn_earliest_arrival_day_plan", window(), || {
        black_box(openspace_net::dtn::earliest_arrival(
            &contacts, 2, 0, 1, 0.0, 1e6,
        ))
        .ok();
    });

    // Shapley over an 8-member game.
    let members: Vec<OperatorId> = (1..=8).map(OperatorId).collect();
    bench("shapley_8_members", window(), || {
        black_box(openspace_economics::incentives::shapley_shares(
            &members,
            |mask: u32| (mask.count_ones() as f64).sqrt(),
        ));
    });

    // Packet simulation, one second of a loaded link.
    use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, TrafficKind};
    let mut g = Graph::new(2, 0);
    g.add_bidirectional(0, 1, 0.001, 1e7, 0, 0, LinkTech::Rf);
    let flows = [FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 8e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    let cfg = NetSimConfig {
        duration_s: 1.0,
        ..Default::default()
    };
    bench("netsim_1s_loaded_link", window(), || {
        black_box(NetSim::new(cfg).with_snapshot(&g).run(&flows)).ok();
    });

    // The resnapshot-heavy dynamic pair: 30 s over the moving Iridium
    // constellation, topology refreshed every second. The rebuild
    // kernel re-propagates orbits and re-tests every pair at each
    // refresh; the delta kernel replays the timeline precomputed once
    // outside the loop. Same packets bit for bit — the delta path is
    // the optimization the timeline subsystem exists for.
    let sats = iridium_nodes();
    let stations: Vec<GroundNode> = Vec::new();
    let params = SnapshotParams::default();
    let dyn_provider = |t: f64| build_snapshot(t, &sats, &stations, &params);
    let g0 = dyn_provider(0.0);
    let dyn_flows = [FlowSpec {
        src: 0.into(),
        dst: g0.sat_node(33),
        rate_bps: 2e5,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    let dyn_cfg = NetSimConfig {
        duration_s: 30.0,
        ..Default::default()
    };
    bench("netsim_dynamic_rebuild", window(), || {
        black_box(
            NetSim::new(dyn_cfg)
                .with_provider(&dyn_provider, 1.0)
                .run(&dyn_flows),
        )
        .ok();
    });
    let tl =
        TopologyTimeline::build(&dyn_provider, 0.0, 1.0, 30.0, 1).expect("valid timeline horizon");
    bench("netsim_dynamic_delta", window(), || {
        black_box(NetSim::new(dyn_cfg).with_timeline(&tl).run(&dyn_flows)).ok();
    });
    // Building the timeline itself (amortized once per horizon).
    bench("timeline_build_30ticks_serial", window(), || {
        black_box(TopologyTimeline::build(&dyn_provider, 0.0, 1.0, 30.0, 1)).ok();
    });
}

fn bench_engine() {
    use openspace_core::netsim::{EngineKind, FlowSpec, NetSim, NetSimConfig, TrafficKind};
    use openspace_sim::prelude::{CalendarQueue, EventQueue, Scheduler, SimRng};

    // Scheduler churn in isolation: hold ~1k pending events and run a
    // steady-state pop-one/schedule-one loop — the access pattern the
    // packet engine produces (Depart/HopArrive chains at short
    // offsets). Both kernels replay the identical schedule; only the
    // queue data structure differs.
    fn churn<S: Scheduler<u64> + Default>(name: &str) {
        bench(name, window(), || {
            let mut q = S::default();
            let mut rng = SimRng::new(42);
            for i in 0..1024u64 {
                q.schedule(rng.uniform_range(0.0, 1.0), i);
            }
            for _ in 0..8192u64 {
                let (t, e) = q.pop().expect("queue stays loaded");
                q.schedule(t + rng.uniform_range(1e-5, 2e-3), e);
            }
            while let Some(x) = q.pop() {
                black_box(x);
            }
        });
    }
    churn::<EventQueue<u64>>("equeue_churn_heap");
    churn::<CalendarQueue<u64>>("equeue_churn_calendar");

    // The end-to-end pair: `netsim_1s_loaded_link` pinned to each
    // engine explicitly (the unpinned kernel above runs the default,
    // i.e. the calendar queue). The reports are bit-identical — the
    // `engine_equivalence` suite pins that — so the delta is pure
    // event-queue cost.
    let mut g = Graph::new(2, 0);
    g.add_bidirectional(0, 1, 0.001, 1e7, 0, 0, LinkTech::Rf);
    let flows = [FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 8e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    for (name, engine) in [
        ("netsim_1s_heap", EngineKind::Heap),
        ("netsim_1s_calendar", EngineKind::Calendar),
    ] {
        let cfg = NetSimConfig {
            duration_s: 1.0,
            engine,
            ..Default::default()
        };
        bench(name, window(), || {
            black_box(NetSim::new(cfg).with_snapshot(&g).run(&flows)).ok();
        });
    }
}

fn bench_telemetry() {
    use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, TrafficKind};
    use openspace_telemetry::{MemoryRecorder, NullRecorder, Recorder};

    // The acceptance-relevant pair: the netsim kernel through the
    // recorded API with the null recorder must sit within noise of the
    // plain `netsim_1s_loaded_link` kernel above; the memory recorder
    // shows what full observability costs.
    let mut g = Graph::new(2, 0);
    g.add_bidirectional(0, 1, 0.001, 1e7, 0, 0, LinkTech::Rf);
    let flows = [FlowSpec {
        src: 0.into(),
        dst: 1.into(),
        rate_bps: 8e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    let cfg = NetSimConfig {
        duration_s: 1.0,
        ..Default::default()
    };
    bench("netsim_1s_recorded_null", window(), || {
        black_box(
            NetSim::new(cfg)
                .with_snapshot(&g)
                .run_recorded(&flows, &mut NullRecorder),
        )
        .ok();
    });
    bench("netsim_1s_recorded_memory", window(), || {
        let mut rec = MemoryRecorder::new();
        black_box(
            NetSim::new(cfg)
                .with_snapshot(&g)
                .run_recorded(&flows, &mut rec),
        )
        .ok();
        black_box(&rec);
    });

    // Raw recorder primitives.
    let mut mem = MemoryRecorder::new();
    let mut i = 0u64;
    bench("memory_recorder_observe", window(), || {
        mem.observe("kernel.sample", (i % 1000) as f64);
        i += 1;
    });
    black_box(&mem);
    bench("null_recorder_observe", window(), || {
        NullRecorder.observe(black_box("kernel.sample"), black_box(1.5));
    });
}

fn bench_demand() {
    use openspace_demand::prelude::*;

    // The demand hot loop: one full-planet snapshot of per-cell,
    // per-class offered load for a million-user grid. `flows_at` is
    // pure in `t`, so a whole diurnal timeline is N of these.
    let grid = PopulationGrid::build(&PopulationConfig {
        total_users: 1_000_000,
        ..Default::default()
    })
    .expect("valid population config");
    let model = DemandModel::new(grid, AppMix::broadband(), DemandConfig::default())
        .expect("valid demand config");
    let mut hour = 0u64;
    bench("demand_flows_1m_users", window(), || {
        let t = (hour % 24) as f64 * 3_600.0;
        hour += 1;
        black_box(model.flows_at(t));
    });
}

fn bench_study() {
    // One small figure-2(b) point end to end — the unit of experiment work.
    let cfg = StudyConfig {
        trials: 2,
        epochs_per_trial: 2,
        ..Default::default()
    };
    bench("fig2b_point_n25", window(), || {
        black_box(latency_vs_satellites(&cfg, &[25]));
    });
}

fn main() {
    println!("{:<40} {:>10}", "kernel", "time");
    println!("{}", "-".repeat(72));
    bench_propagation();
    bench_snapshot();
    bench_contact_scan();
    bench_routing();
    bench_coverage();
    bench_mac();
    bench_wire();
    bench_economics();
    bench_extensions();
    bench_engine();
    bench_telemetry();
    bench_demand();
    bench_study();
}
