//! Shared scenario setup for the `exp_*` binaries.
//!
//! Every experiment used to open with the same boilerplate: build the §4
//! Iridium-split federation, place the Nairobi reference user, find the
//! access satellite, route to the nearest gateway. This module is that
//! boilerplate, written once, plus the [`ScenarioRunner`] constructors
//! the Figure 2 sweeps run on.

use openspace_core::prelude::*;
use openspace_net::isl::{best_access_satellite, SatNode};
use openspace_net::routing::{latency_weight, shortest_path, Path};
use openspace_net::topology::Graph;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic, Vec3};
use openspace_orbit::kepler::OrbitalElements;
use openspace_orbit::propagator::{PerturbationModel, Propagator};
use openspace_orbit::walker::{iridium_params, random_constellation, walker_star, WalkerParams};
use openspace_phy::hardware::SatelliteClass;
use std::time::{Duration, Instant};

/// Constellation sizes swept by Figure 2(b).
pub const FIG2B_SIZES: [usize; 14] = [2, 4, 6, 8, 12, 16, 20, 25, 30, 40, 50, 65, 80, 100];

/// Constellation sizes swept by Figure 2(c).
pub const FIG2C_SIZES: [usize; 13] = [2, 5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 85, 100];

/// Wall-clock a closure; returns its result and the elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The §4 deployment every experiment starts from: an Iridium-like
/// constellation split among `members` operators over the default shared
/// ground segment.
pub fn standard_federation(members: usize, classes: &[SatelliteClass]) -> Federation {
    iridium_federation(members, classes, &default_station_sites())
}

/// ECEF position of a ground user.
pub fn ground_user(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Vec3 {
    geodetic_to_ecef(Geodetic::from_degrees(lat_deg, lon_deg, alt_m))
}

/// The Nairobi reference user shared across experiments (the paper's
/// remote-connectivity stand-in).
pub fn nairobi_user() -> Vec3 {
    ground_user(-1.3, 36.8, 1_700.0)
}

/// Index and slant range (m) of the federation satellite best serving a
/// user at `user_ecef`, under the federation's elevation mask.
pub fn access_satellite(fed: &Federation, user_ecef: Vec3, t_s: f64) -> Option<(usize, f64)> {
    best_access_satellite(
        user_ecef,
        &fed.sat_nodes(),
        t_s,
        fed.snapshot_params.min_elevation_rad,
    )
}

/// Lowest-propagation-latency route from satellite `sat_idx` to any
/// ground station; returns the station index and the path.
pub fn best_station_route(
    fed: &Federation,
    graph: &Graph,
    sat_idx: usize,
) -> Option<(usize, Path)> {
    (0..fed.stations().len())
        .filter_map(|gi| {
            shortest_path(
                graph,
                graph.sat_node(sat_idx),
                graph.station_node(gi),
                latency_weight,
            )
            .map(|p| (gi, p))
        })
        .min_by(|(_, a), (_, b)| a.total_cost.total_cmp(&b.total_cost))
}

/// A parallel [`ScenarioRunner`] over the default §4 study scenario with
/// the given sampling depth.
pub fn study_runner(trials: u64, epochs_per_trial: usize) -> ScenarioRunner {
    ScenarioRunner::parallel(StudyConfig {
        trials,
        epochs_per_trial,
        ..Default::default()
    })
}

/// The paper's 66-satellite Iridium-like Walker Star, as raw elements.
pub fn iridium_elements() -> Vec<OrbitalElements> {
    walker_star(&iridium_params()).expect("iridium parameters are valid")
}

/// Propagators for an arbitrary Walker Star configuration.
pub fn walker_propagators(params: &WalkerParams, model: PerturbationModel) -> Vec<Propagator> {
    walker_star(params)
        .expect("walker parameters are valid")
        .into_iter()
        .map(|el| Propagator::new(el, model))
        .collect()
}

/// Single-operator [`SatNode`]s for a random constellation — the density
/// sweeps' repeated setup block.
pub fn random_sat_nodes(
    n: usize,
    altitude_m: f64,
    inclination_deg: f64,
    seed: u64,
    model: PerturbationModel,
) -> Vec<SatNode> {
    random_constellation(n, altitude_m, inclination_deg, seed)
        .expect("valid constellation parameters")
        .into_iter()
        .map(|el| SatNode {
            propagator: Propagator::new(el, model),
            operator: 0,
            has_optical: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_federation_splits_the_iridium_fleet() {
        let fed = standard_federation(4, &[SatelliteClass::SmallSat]);
        assert_eq!(fed.satellites().len(), 66);
        assert_eq!(fed.operator_ids().len(), 4);
        assert!(!fed.stations().is_empty());
    }

    #[test]
    fn nairobi_user_has_an_access_satellite_and_a_route() {
        let fed = standard_federation(4, &[SatelliteClass::SmallSat]);
        let (sat, slant) = access_satellite(&fed, nairobi_user(), 0.0).expect("coverage");
        assert!(slant > 0.0);
        let graph = fed.snapshot(0.0);
        let (gi, path) = best_station_route(&fed, &graph, sat).expect("connected");
        assert!(gi < fed.stations().len());
        assert!(path.total_cost > 0.0);
        // It really is the minimum over stations.
        for other in 0..fed.stations().len() {
            if let Some(p) = shortest_path(
                &graph,
                graph.sat_node(sat),
                graph.station_node(other),
                latency_weight,
            ) {
                assert!(path.total_cost <= p.total_cost);
            }
        }
    }

    #[test]
    fn study_runner_is_parallel_over_the_default_scenario() {
        let r = study_runner(3, 2);
        assert_eq!(r.config().trials, 3);
        assert_eq!(r.config().epochs_per_trial, 2);
        assert!(r.threads() >= 1);
    }

    #[test]
    fn iridium_elements_count_matches_the_paper() {
        assert_eq!(iridium_elements().len(), 66);
    }

    #[test]
    fn random_sat_nodes_are_reproducible() {
        let a = random_sat_nodes(8, 550_000.0, 53.0, 7, PerturbationModel::TwoBody);
        let b = random_sat_nodes(8, 550_000.0, 53.0, 7, PerturbationModel::TwoBody);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.propagator.position_eci(100.0),
                y.propagator.position_eci(100.0)
            );
        }
    }
}
