//! E1 / Figure 2(a): the simulated OpenSpace constellation.
//!
//! The paper illustrates an Iridium-like Walker Star (66 satellites, 6
//! planes, 780 km) that "achieves global coverage while maintaining
//! inter-satellite distances and trajectories that allow for simple and
//! sustained ISLs." This binary regenerates that configuration and
//! reports the quantities the caption claims: coverage, ISL distance
//! distribution, and link sustainability (same-plane vs cross-plane).
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_fig2a`

use openspace_bench::{print_header, walker_propagators};
use openspace_net::isl::{build_snapshot, SatNode, SnapshotParams};
use openspace_orbit::prelude::*;

fn main() {
    let params = iridium_params();
    let sats = walker_propagators(&params, PerturbationModel::SecularJ2);

    println!("Figure 2(a): simulated OpenSpace constellation");
    println!(
        "Walker Star {}:{}/{}/{} at {:.0} km",
        params.inclination_deg,
        params.total_satellites,
        params.planes,
        params.phasing,
        m_to_km(params.altitude_m)
    );

    // Global coverage of the configuration.
    let grid = SphereGrid::new(4000);
    for mask_deg in [0.0, 10.0] {
        let frac = grid_coverage_fraction(&grid, &sats, 0.0, f64::to_radians(mask_deg));
        println!(
            "global coverage at {mask_deg:>2}° elevation mask: {:.1}%",
            frac * 100.0
        );
    }

    // ISL geometry over one orbital period.
    let nodes: Vec<SatNode> = sats
        .iter()
        .map(|&p| SatNode {
            propagator: p,
            operator: 0,
            has_optical: false,
        })
        .collect();
    let snap_params = SnapshotParams::default();
    let period = sats[0].elements().period_s();

    print_header(
        "ISL sustainability over one orbital period",
        &format!(
            "{:<8} {:>7} {:>12} {:>12} {:>12}",
            "t (min)", "links", "min (km)", "mean (km)", "max (km)"
        ),
    );
    for k in 0..=6 {
        let t = period * k as f64 / 6.0;
        let g = build_snapshot(t, &nodes, &[], &snap_params);
        let mut dists = Vec::new();
        for i in 0..g.satellite_count() {
            for e in g.edges(i) {
                if e.to > i {
                    dists.push(e.latency_s * SPEED_OF_LIGHT_M_PER_S / 1000.0);
                }
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = dists.iter().sum::<f64>() / dists.len() as f64;
        println!(
            "{:<8.1} {:>7} {:>12.0} {:>12.0} {:>12.0}",
            t / 60.0,
            dists.len(),
            dists.first().unwrap(),
            mean,
            dists.last().unwrap()
        );
    }

    // Ground-track sample of one plane (the "trajectories" of the
    // caption), for plotting.
    print_header(
        "Ground track, satellite 0 (first 100 minutes)",
        &format!("{:<8} {:>10} {:>10}", "t (min)", "lat (deg)", "lon (deg)"),
    );
    for p in ground_track(&sats[0], 0.0, 6000.0, 600.0) {
        println!(
            "{:<8.0} {:>10.2} {:>10.2}",
            p.t_s / 60.0,
            p.geodetic.lat_deg(),
            p.geodetic.lon_deg()
        );
    }

    // Connectivity check: the mesh is one component.
    let g = build_snapshot(0.0, &nodes, &[], &snap_params);
    let reached = g.reachable_from(0).iter().filter(|&&r| r).count();
    println!(
        "\nISL mesh connectivity: {reached}/{} satellites in one component",
        g.satellite_count()
    );
}
