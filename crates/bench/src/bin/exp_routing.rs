//! E9: proactive vs QoS-aware routing under load.
//!
//! §2.2: "Such a proactive routing protocol will be effective for a
//! beginner system. However, as more players join … there will be a need
//! for routing protocols that take an end-to-end approach … considering
//! factors such as queuing delays at ISLs and at the ground station."
//!
//! We load the Iridium federation's links with increasing background
//! traffic and compare proactive (latency-only) routes against
//! congestion-aware routes on effective latency (propagation + queueing)
//! and on meeting a bandwidth floor.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_routing`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{access_satellite, nairobi_user, print_header, standard_federation, ExpRun};
use openspace_net::routing::{
    congestion_weight, latency_weight, qos_route_recorded, shortest_path_recorded, QosRequirement,
};
use openspace_net::topology::NodeId;
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::rng::SimRng;
use openspace_telemetry::JsonValue;

const PKT_BITS: f64 = 12_000.0;

fn main() {
    let mut run = ExpRun::from_args("exp_routing", 9);
    run.digest_config(
        "loads=[0,0.3,0.5,0.7,0.85,0.95] reps=5 seed=9 pkt_bits=12000 floor_bps=256000",
    );
    let fed = standard_federation(4, &[SatelliteClass::CubeSat]);
    let user_pos = nairobi_user();
    let (src_sat, _) = access_satellite(&fed, user_pos, 0.0).expect("coverage");

    if run.human() {
        println!("E9: routing under load (RF-only federation, Nairobi uplink)");
        print_header(
            "Background load sweep (mean link utilization)",
            &format!(
                "{:<8} {:>18} {:>18} {:>14} {:>14}",
                "load", "proactive (ms)", "QoS-aware (ms)", "saving", "floor met"
            ),
        );
    }

    run.phase("load sweep");
    let mut sweep = Vec::new();
    for mean_load in [0.0, 0.3, 0.5, 0.7, 0.85, 0.95] {
        // Average over several load placements.
        let mut pro_sum = 0.0;
        let mut qos_sum = 0.0;
        let mut qos_ok = 0usize;
        let reps = 5u64;
        for rep in 0..reps {
            let mut graph = fed.snapshot(0.0);
            let mut rng = SimRng::substream(9, rep);
            // Beta-ish load around the mean: clamp(mean + u*0.3 - 0.15).
            for node in 0..graph.node_count() {
                let loads: Vec<(NodeId, f64)> = graph
                    .edges(node)
                    .iter()
                    .map(|e| {
                        let l = (mean_load + rng.uniform() * 0.3 - 0.15).clamp(0.0, 0.98);
                        (e.to, l)
                    })
                    .collect();
                for (to, l) in loads {
                    graph
                        .set_load(node, to, l)
                        .expect("edges enumerated from this same graph");
                }
            }
            let src = graph.sat_node(src_sat);
            // Proactive picks its station and path by *propagation*
            // latency alone (orbits are public, loads are not); we then
            // charge the chosen path at its effective (queueing-aware)
            // cost.
            let mut best_pro: Option<(f64, f64)> = None; // (prop, effective)
            let mut best_qos: Option<f64> = None;
            for gi in 0..fed.stations().len() {
                let dst = graph.station_node(gi);
                if let Some(p) = shortest_path_recorded(&graph, src, dst, latency_weight, run.rec())
                {
                    let eff = p
                        .sum_metric(&graph, |e| congestion_weight(e, PKT_BITS))
                        .unwrap_or(f64::INFINITY);
                    if best_pro.is_none_or(|(bp, _)| p.total_cost < bp) {
                        best_pro = Some((p.total_cost, eff));
                    }
                }
                let req = QosRequirement {
                    min_bandwidth_bps: 256_000.0,
                    max_latency_s: f64::INFINITY,
                };
                if let Some(p) = qos_route_recorded(&graph, src, dst, &req, PKT_BITS, run.rec()) {
                    if best_qos.is_none_or(|b| p.total_cost < b) {
                        best_qos = Some(p.total_cost);
                    }
                }
            }
            if let Some((_, eff)) = best_pro {
                pro_sum += eff;
            }
            if let Some(v) = best_qos {
                qos_sum += v;
                qos_ok += 1;
            }
        }
        let pro = pro_sum / reps as f64 * 1e3;
        let qos = if qos_ok > 0 {
            qos_sum / qos_ok as f64 * 1e3
        } else {
            f64::NAN
        };
        sweep.push(JsonValue::object([
            ("mean_load", JsonValue::Num(mean_load)),
            ("proactive_effective_s", JsonValue::Num(pro / 1e3)),
            (
                "qos_aware_s",
                if qos_ok > 0 {
                    JsonValue::Num(qos / 1e3)
                } else {
                    JsonValue::Null
                },
            ),
            ("floor_met", JsonValue::Uint(qos_ok as u64)),
            ("reps", JsonValue::Uint(reps)),
        ]));
        if run.human() {
            println!(
                "{:<8.2} {:>18.2} {:>18.2} {:>13.1}% {:>11}/{}",
                mean_load,
                pro,
                qos,
                (1.0 - qos / pro) * 100.0,
                qos_ok,
                reps
            );
        }
    }
    run.push_extra("sweep", JsonValue::Array(sweep));

    if run.human() {
        println!(
            "\nshape check: the two routers agree on an idle network; as load \
             grows, congestion-aware routing increasingly undercuts the \
             proactive route's effective latency (§2.2's scaling argument)."
        );
    }
    run.finish();
}
