//! E4: handover cadence and the cost of re-authentication.
//!
//! §2.2 text claims quantified here:
//! * "Starlink achieves continuous connectivity through sheer abundance,
//!   with satellite handover occurring every 15 seconds" — handover
//!   cadence falls as constellation density grows.
//! * OpenSpace successor prediction "eliminates the need \[to\] run
//!   authentication and association protocols again, ensuring a smooth
//!   handoff" — we compare per-handover interruption with and without
//!   prediction.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_handover`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{fmt_opt, print_header, random_sat_nodes, ExpRun};
use openspace_net::contact::contact_plan_recorded;
use openspace_net::handover::{service_schedule_with_outages_recorded, HandoverCost};
use openspace_net::isl::SatNode;
use openspace_orbit::prelude::*;
use openspace_telemetry::{JsonValue, MemoryRecorder};

fn main() {
    let mut run = ExpRun::from_args("exp_handover", 77);
    run.digest_config("densities=[50,100,200,400,800,1600] seeds=3 horizon_s=14400 mask_deg=25");
    let ground = geodetic_to_ecef(Geodetic::from_degrees(47.0, 8.0, 400.0));
    let horizon_s = 4.0 * 3600.0;
    let mask = 25f64.to_radians(); // a broadband-grade mask shortens passes

    if run.human() {
        println!("E4: handover cadence vs constellation density (4 h, 25 deg mask)");
        print_header(
            "Density sweep (random 550 km constellations, seed-averaged)",
            &format!(
                "{:<6} {:>10} {:>16} {:>12}",
                "n", "handovers", "mean t_bh (s)", "outage (s)"
            ),
        );
    }
    run.phase("density sweep");
    let mut sweep = Vec::new();
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let mut handovers = 0usize;
        let mut tbh_sum = 0.0;
        let mut tbh_count = 0usize;
        let mut outage = 0.0;
        let seeds = 3u64;
        for seed in 0..seeds {
            let sats = random_sat_nodes(
                n,
                km_to_m(550.0),
                53.0,
                77 + seed,
                PerturbationModel::TwoBody,
            );
            let windows =
                contact_plan_recorded(&sats, ground, 0.0, horizon_s, 2.0, mask, run.rec());
            let s =
                service_schedule_with_outages_recorded(&windows, &[], 0.0, horizon_s, run.rec())
                    .expect("valid service window");
            handovers += s.handovers;
            if let Some(t) = s.mean_time_between_handovers_s() {
                tbh_sum += t;
                tbh_count += 1;
            }
            outage += s.outage_s;
        }
        sweep.push(JsonValue::object([
            ("n", JsonValue::Uint(n as u64)),
            (
                "handovers_per_seed",
                JsonValue::Uint((handovers / seeds as usize) as u64),
            ),
            (
                "mean_time_between_handovers_s",
                if tbh_count > 0 {
                    JsonValue::Num(tbh_sum / tbh_count as f64)
                } else {
                    JsonValue::Null
                },
            ),
            ("mean_outage_s", JsonValue::Num(outage / seeds as f64)),
        ]));
        if run.human() {
            println!(
                "{:<6} {:>10} {:>16} {:>12.0}",
                n,
                handovers / seeds as usize,
                fmt_opt((tbh_count > 0).then(|| tbh_sum / tbh_count as f64), 0),
                outage / seeds as f64
            );
        }
    }
    run.push_extra("density_sweep", JsonValue::Array(sweep));
    if run.human() {
        println!(
            "shape check: mean time between handovers falls toward the tens of \
             seconds as density approaches Starlink scale."
        );

        // Interruption: prediction vs re-authentication, across auth-path
        // lengths (the home AAA can be many ISL hops away in OpenSpace).
        print_header(
            "Per-handover interruption: successor prediction vs re-auth",
            &format!(
                "{:<22} {:>16} {:>16} {:>8}",
                "home AAA distance", "predicted (ms)", "re-auth (ms)", "ratio"
            ),
        );
    }
    run.phase("interruption model");
    let mut interruption = Vec::new();
    for (label, hops) in [("1 ISL hop", 1.0), ("3 ISL hops", 3.0), ("7 ISL hops", 7.0)] {
        let access_rtt = 2.0 * 1_200_000.0 / SPEED_OF_LIGHT_M_PER_S; // 1200 km slant
        let isl_hop = 4_000_000.0 / SPEED_OF_LIGHT_M_PER_S;
        let cost = HandoverCost {
            access_rtt_s: access_rtt,
            home_auth_rtt_s: 2.0 * hops * isl_hop + 0.005, // + AAA processing
        };
        interruption.push(JsonValue::object([
            ("home_aaa", JsonValue::Str(label.into())),
            (
                "predicted_s",
                JsonValue::Num(cost.predicted_interruption_s()),
            ),
            ("reauth_s", JsonValue::Num(cost.reauth_interruption_s())),
        ]));
        if run.human() {
            println!(
                "{:<22} {:>16.2} {:>16.2} {:>8.1}",
                label,
                cost.predicted_interruption_s() * 1e3,
                cost.reauth_interruption_s() * 1e3,
                cost.reauth_interruption_s() / cost.predicted_interruption_s()
            );
        }
    }
    run.push_extra("interruption", JsonValue::Array(interruption));
    if run.human() {
        println!(
            "shape check: prediction holds interruption to one access round \
             trip regardless of how far the home AAA is."
        );
    }

    // Horizon-skip demonstration: a day-long contact plan over the
    // Iridium shell at 5 s resolution. The dense scan would propagate
    // 66 * 17281 samples; the gated scanner proves the overwhelming
    // majority below the 25 deg mask without touching them. Counters
    // only — the demo is silent in human mode so the tables above stay
    // byte-identical to earlier builds.
    run.phase("contact scan demo");
    let iridium: Vec<SatNode> = walker_star(&iridium_params())
        .unwrap()
        .into_iter()
        .map(|el| SatNode {
            propagator: Propagator::new(el, PerturbationModel::SecularJ2),
            operator: 0,
            has_optical: false,
        })
        .collect();
    let day_s = 86_400.0;
    let mut scan_rec = MemoryRecorder::new();
    let day_windows = contact_plan_recorded(&iridium, ground, 0.0, day_s, 5.0, mask, &mut scan_rec);
    let evaluated = scan_rec.counter("contact.samples_evaluated");
    let skipped = scan_rec.counter("contact.samples_skipped");
    run.push_extra(
        "contact_scan_demo",
        JsonValue::object([
            ("constellation", JsonValue::Str("iridium_66".into())),
            ("horizon_s", JsonValue::Num(day_s)),
            ("step_s", JsonValue::Num(5.0)),
            ("mask_deg", JsonValue::Num(25.0)),
            ("dense_samples", JsonValue::Uint(evaluated + skipped)),
            ("samples_evaluated", JsonValue::Uint(evaluated)),
            ("samples_skipped", JsonValue::Uint(skipped)),
            ("windows", JsonValue::Uint(day_windows.len() as u64)),
        ]),
    );
    run.finish();
}
