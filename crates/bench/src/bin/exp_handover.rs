//! E4: handover cadence and the cost of re-authentication.
//!
//! §2.2 text claims quantified here:
//! * "Starlink achieves continuous connectivity through sheer abundance,
//!   with satellite handover occurring every 15 seconds" — handover
//!   cadence falls as constellation density grows.
//! * OpenSpace successor prediction "eliminates the need \[to\] run
//!   authentication and association protocols again, ensuring a smooth
//!   handoff" — we compare per-handover interruption with and without
//!   prediction.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_handover`

use openspace_bench::{fmt_opt, print_header, random_sat_nodes};
use openspace_net::contact::contact_plan;
use openspace_net::handover::{service_schedule, HandoverCost};
use openspace_orbit::prelude::*;

fn main() {
    let ground = geodetic_to_ecef(Geodetic::from_degrees(47.0, 8.0, 400.0));
    let horizon_s = 4.0 * 3600.0;
    let mask = 25f64.to_radians(); // a broadband-grade mask shortens passes

    println!("E4: handover cadence vs constellation density (4 h, 25 deg mask)");
    print_header(
        "Density sweep (random 550 km constellations, seed-averaged)",
        &format!(
            "{:<6} {:>10} {:>16} {:>12}",
            "n", "handovers", "mean t_bh (s)", "outage (s)"
        ),
    );
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let mut handovers = 0usize;
        let mut tbh_sum = 0.0;
        let mut tbh_count = 0usize;
        let mut outage = 0.0;
        let seeds = 3u64;
        for seed in 0..seeds {
            let sats = random_sat_nodes(
                n,
                km_to_m(550.0),
                53.0,
                77 + seed,
                PerturbationModel::TwoBody,
            );
            let windows = contact_plan(&sats, ground, 0.0, horizon_s, 2.0, mask);
            let s = service_schedule(&windows, 0.0, horizon_s).expect("valid service window");
            handovers += s.handovers;
            if let Some(t) = s.mean_time_between_handovers_s() {
                tbh_sum += t;
                tbh_count += 1;
            }
            outage += s.outage_s;
        }
        println!(
            "{:<6} {:>10} {:>16} {:>12.0}",
            n,
            handovers / seeds as usize,
            fmt_opt((tbh_count > 0).then(|| tbh_sum / tbh_count as f64), 0),
            outage / seeds as f64
        );
    }
    println!(
        "shape check: mean time between handovers falls toward the tens of \
         seconds as density approaches Starlink scale."
    );

    // Interruption: prediction vs re-authentication, across auth-path
    // lengths (the home AAA can be many ISL hops away in OpenSpace).
    print_header(
        "Per-handover interruption: successor prediction vs re-auth",
        &format!(
            "{:<22} {:>16} {:>16} {:>8}",
            "home AAA distance", "predicted (ms)", "re-auth (ms)", "ratio"
        ),
    );
    for (label, hops) in [("1 ISL hop", 1.0), ("3 ISL hops", 3.0), ("7 ISL hops", 7.0)] {
        let access_rtt = 2.0 * 1_200_000.0 / SPEED_OF_LIGHT_M_PER_S; // 1200 km slant
        let isl_hop = 4_000_000.0 / SPEED_OF_LIGHT_M_PER_S;
        let cost = HandoverCost {
            access_rtt_s: access_rtt,
            home_auth_rtt_s: 2.0 * hops * isl_hop + 0.005, // + AAA processing
        };
        println!(
            "{:<22} {:>16.2} {:>16.2} {:>8.1}",
            label,
            cost.predicted_interruption_s() * 1e3,
            cost.reauth_interruption_s() * 1e3,
            cost.reauth_interruption_s() / cost.predicted_interruption_s()
        );
    }
    println!(
        "shape check: prediction holds interruption to one access round \
         trip regardless of how far the home AAA is."
    );
}
