//! Experiment: graceful degradation under faults — federation vs monolith.
//!
//! The democratization claim has a resilience corollary: when one member
//! firm of an OpenSpace federation fails or walks away, the survivors
//! keep serving (users migrate, traffic re-routes); when the single
//! owner of a vertically-integrated monolith fails, everything it owns
//! goes dark at once. This experiment makes that comparison with one
//! seeded [`FaultPlan`] — operator 1 withdraws a third of the way into
//! the run, on top of background random satellite outages — compiled
//! against federations of 1 (the monolith), 2, 3, and 6 members.
//!
//! Ownership is plane-contiguous, matching the incremental-deployment
//! story (each member launches whole Iridium planes): with `m` members,
//! member 1 owns the first `6/m` planes, so its withdrawal darkens
//! `1/m` of the sky. Node indices are identical across member counts
//! (same 66-satellite constellation, same 6 stations), so every run
//! injects the *same* flows and the same background outages; the only
//! difference is how much of the sky "operator 1" owns. Runs are
//! bitwise-deterministic: the sweep executes serially and in parallel
//! and asserts the reports are identical.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_fault`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{iridium_elements, print_header, ExpRun};
use openspace_core::prelude::*;
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::exec::{default_threads, parallel_map_seeded};
use openspace_sim::fault::FaultPlan;
use openspace_telemetry::{JsonValue, NullRecorder, Recorder};

/// Member counts swept; index 0 is the monolithic baseline. All divide
/// the six Iridium planes evenly.
const MEMBERS: [usize; 4] = [1, 2, 3, 6];

/// The Iridium fleet split plane-contiguously among `members` operators,
/// stations round-robin over the default shared ground segment.
fn plane_federation(members: usize) -> Federation {
    let mut fed = Federation::new();
    let ops: Vec<_> = (0..members)
        .map(|i| fed.add_operator(format!("member-{}", i + 1)))
        .collect();
    let planes_per_member = 6 / members;
    for (i, el) in iridium_elements().into_iter().enumerate() {
        let plane = i / 11;
        fed.add_satellite(ops[plane / planes_per_member], SatelliteClass::SmallSat, el)
            .expect("member operator");
    }
    for (i, site) in default_station_sites().into_iter().enumerate() {
        fed.add_ground_station(ops[i % members], site)
            .expect("member operator");
    }
    fed
}

/// Flows chosen to survive the withdrawal in every *federated* layout:
/// the source satellites sit in the last two planes (always the last
/// member's) and the destination stations 1 and 5 are never owned by
/// member 1 when there is more than one member. Under the monolith,
/// member 1 owns all of them.
fn flows() -> Vec<FlowSpec> {
    let station = |gi: usize| 66 + gi;
    vec![
        FlowSpec::new(45usize, station(1), 4.0e5, 1_500, TrafficKind::Poisson),
        FlowSpec::new(50usize, station(5), 4.0e5, 1_500, TrafficKind::Poisson),
        FlowSpec::new(56usize, station(1), 4.0e5, 1_500, TrafficKind::Poisson),
        FlowSpec::new(61usize, station(5), 4.0e5, 1_500, TrafficKind::Poisson),
    ]
}

fn run_members(members: usize, rec: &mut dyn Recorder) -> (usize, NetSimReport) {
    let fed = plane_federation(members);
    let withdrawing = fed.operator_ids()[0];
    let plan = FaultPlan::builder()
        .seed(42)
        .operator_withdrawal(withdrawing, 20.0)
        .random_sat_outages(5.0, 6.0, 0.0, 60.0)
        .build()
        .expect("valid fault plan");
    let events = plan
        .compile(&fed.fault_topology())
        .expect("plan fits topology");
    let cfg = NetSimConfig::builder()
        .duration_s(60.0)
        .seed(7)
        .build()
        .expect("valid netsim config");
    let g0 = fed.snapshot(0.0);
    let report = NetSim::new(cfg)
        .with_snapshot(&g0)
        .with_faults(&events)
        .run_recorded(&flows(), rec)
        .expect("valid faulted run");
    (events.len(), report)
}

fn main() {
    let mut run = ExpRun::from_args("exp_fault", 7);
    run.digest_config("members=[1,2,3,6] fault_seed=42 sim_seed=7 duration_s=60 withdraw_at_s=20");
    if run.human() {
        println!("== Fault injection: operator withdrawal at t=20 s of 60 s, plus");
        println!("   seeded random satellite outages — identical plan, varying");
        println!("   federation size (1 member = the monolithic incumbent) ==");

        print_header(
            "Delivery under the same seeded fault plan",
            &format!(
                "{:<10} {:>8} {:>10} {:>12} {:>12} {:>10} {:>10}",
                "members", "events", "delivered", "fault loss", "avail", "mttr (s)", "reassoc"
            ),
        );
    }
    run.phase("serial sweep");
    let serial: Vec<(usize, NetSimReport)> =
        MEMBERS.iter().map(|&m| run_members(m, run.rec())).collect();
    for (m, (events, r)) in MEMBERS.iter().zip(&serial) {
        if run.human() {
            println!(
                "{:<10} {:>8} {:>9.1}% {:>12} {:>12.4} {:>10} {:>10}",
                m,
                events,
                r.delivery_ratio * 100.0,
                r.fault.packets_lost,
                r.fault.node_availability,
                r.fault
                    .mttr_s
                    .map(|t| format!("{t:.1}"))
                    .unwrap_or_else(|| "-".into()),
                r.fault.reassociations,
            );
        }
    }
    // The acceptance-relevant fault block: availability / MTTR /
    // re-association per federation size, in the deterministic section.
    run.push_extra(
        "fault",
        JsonValue::Array(
            MEMBERS
                .iter()
                .zip(&serial)
                .map(|(&m, (events, r))| {
                    JsonValue::object([
                        ("members", JsonValue::Uint(m as u64)),
                        ("events", JsonValue::Uint(*events as u64)),
                        ("delivery_ratio", JsonValue::Num(r.delivery_ratio)),
                        ("packets_lost", JsonValue::Uint(r.fault.packets_lost)),
                        (
                            "node_availability",
                            JsonValue::Num(r.fault.node_availability),
                        ),
                        (
                            "mttr_s",
                            r.fault.mttr_s.map_or(JsonValue::Null, JsonValue::Num),
                        ),
                        ("reassociations", JsonValue::Uint(r.fault.reassociations)),
                    ])
                })
                .collect(),
        ),
    );

    // Determinism: the same sweep on a worker pool must be bitwise equal.
    run.phase("parallel sweep");
    let parallel: Vec<(usize, NetSimReport)> =
        parallel_map_seeded(&MEMBERS, default_threads().max(2), 42, |&m, _rng| {
            run_members(m, &mut NullRecorder)
        });
    assert_eq!(serial, parallel, "parallel sweep must match serial bitwise");
    if run.human() {
        println!("\ndeterminism: serial and parallel sweeps bitwise-identical ✓");
    }

    // The resilience claim, asserted: every federated layout beats the
    // monolith under the identical fault plan.
    let monolith = &serial[0].1;
    for (m, (_, r)) in MEMBERS.iter().zip(&serial).skip(1) {
        assert!(
            r.delivery_ratio > monolith.delivery_ratio,
            "{m}-member federation ({:.3}) must beat the monolith ({:.3})",
            r.delivery_ratio,
            monolith.delivery_ratio
        );
    }
    if run.human() {
        println!(
            "resilience: federation delivery strictly above monolith ({:.1}% vs {:.1}%) ✓",
            serial
                .last()
                .map(|(_, r)| r.delivery_ratio * 100.0)
                .unwrap_or(0.0),
            monolith.delivery_ratio * 100.0
        );
    }

    // Federation-level view of the same withdrawal: subscribers migrate
    // to the survivors; the monolith has nowhere to send them.
    run.phase("migration");
    if run.human() {
        print_header(
            "Subscriber migration at the withdrawal",
            &format!("{:<10} {:>12} {:>40}", "members", "migrated", "outcome"),
        );
    }
    for &m in &MEMBERS {
        let mut fed = plane_federation(m);
        let leaver = fed.operator_ids()[0];
        for _ in 0..6 {
            fed.register_user(leaver).expect("member operator");
        }
        match fed.withdraw_operator(leaver) {
            Ok(w) => {
                run.rec()
                    .add("federation.subscribers_migrated", w.migrated.len() as u64);
                if run.human() {
                    println!(
                        "{:<10} {:>12} {:>40}",
                        m,
                        w.migrated.len(),
                        format!("{} surviving operators", fed.operator_count())
                    );
                }
            }
            Err(e) => {
                if run.human() {
                    println!("{:<10} {:>12} {:>40}", m, 0, e.to_string());
                }
            }
        }
    }
    if run.human() {
        println!(
            "\nshape check: the monolith loses every flow the moment its only \
             operator leaves; federations lose only the departing member's \
             planes, re-route around the gap, and migrate the stranded \
             subscribers to the survivors — the more members, the smaller \
             the hole."
        );
    }
    run.finish();
}
