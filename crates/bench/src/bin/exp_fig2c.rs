//! E3 / Figure 2(c): Earth coverage vs constellation size.
//!
//! Paper: "total earth coverage is achieved by about 50 satellites. The
//! additional satellites ensure redundancy…" under the worst-case model
//! where "if there is any overlap between a pair of satellite ranges,
//! their effective coverage will be reduced to that of a single
//! satellite."
//!
//! We regenerate the worst-case curve and print the honest grid-union
//! and disjoint-packing estimators alongside, plus the CBO's 72-satellite
//! ≈95% reference point that §4 cites. The sweep runs on the shared
//! [`ScenarioRunner`](openspace_core::study::ScenarioRunner) harness
//! (memoized ephemeris, parallel size points).
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_fig2c`

use openspace_bench::{print_header, study_runner, walker_propagators, FIG2C_SIZES};
use openspace_orbit::prelude::*;

fn main() {
    let runner = study_runner(20, 8);
    let cfg = runner.config();

    println!(
        "Figure 2(c): coverage vs constellation size ({} trials/point, {} worker threads)",
        cfg.trials,
        runner.threads()
    );
    print_header(
        "Random constellations, 780 km, 86.4 deg",
        &format!(
            "{:<6} {:>18} {:>14} {:>18}",
            "n", "worst-case (paper)", "grid union", "disjoint packing"
        ),
    );
    for p in runner.coverage_vs_satellites(&FIG2C_SIZES) {
        println!(
            "{:<6} {:>17.1}% {:>13.1}% {:>17.1}%",
            p.n_satellites,
            p.worst_case * 100.0,
            p.grid * 100.0,
            p.packing * 100.0
        );
    }

    // The CBO reference point quoted in §4.
    let sats = walker_propagators(&cbo_params(), PerturbationModel::TwoBody);
    let grid = SphereGrid::new(4000);
    println!("\nCBO reference: 72 satellites, 6 planes, 80 deg inclination (CBO: ~95%)");
    for mask_deg in [0.0f64, 10.0, 15.0] {
        let frac = grid_coverage_fraction(&grid, &sats, 0.0, mask_deg.to_radians());
        println!(
            "  grid coverage at {mask_deg:>2}° elevation mask: {:.1}%",
            frac * 100.0
        );
    }
    println!(
        "shape check: worst-case coverage reaches ~100% near 50 satellites; \
         additional satellites buy redundancy, not area."
    );
}
