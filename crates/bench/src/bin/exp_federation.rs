//! E8: the federation benefit — patchwork vs continuous coverage.
//!
//! §2: "Without meaningful collaboration, many smaller satellite networks
//! would simply have coverage for a patchwork of regions around the globe
//! rather than continuous global coverage on their own. Furthermore, some
//! satellites owned by a given firm may be completely disconnected from
//! the rest of their infrastructure for significant periods of time."
//!
//! Sweep the number of federation members splitting the same 66-satellite
//! constellation and measure, per member and federated: service-time
//! coverage, longest outage, and the capex entry barrier.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_federation`

use openspace_bench::{nairobi_user, print_header, standard_federation};
use openspace_economics::capex::{entry_barrier, LaunchPricing};
use openspace_net::contact::{coverage_time_fraction, longest_outage_s};
use openspace_phy::hardware::SatelliteClass;

fn main() {
    let ground = nairobi_user();
    let horizon_s = 6.0 * 3600.0;
    let step_s = 10.0;

    println!("E8: solo vs federated coverage (Nairobi user, 6 h window)");
    print_header(
        "Members splitting the 66-satellite constellation",
        &format!(
            "{:<9} {:>14} {:>16} {:>16} {:>18}",
            "members", "solo cover", "solo outage (s)", "federated", "entry cost ratio"
        ),
    );
    for k in [1usize, 2, 4, 6, 11] {
        let fed = standard_federation(k, &[SatelliteClass::SmallSat]);
        // Mean solo coverage over members.
        let mut solo_cov = 0.0;
        let mut solo_out = 0.0f64;
        for op in fed.operator_ids() {
            // contact_plan{,_of} run the horizon-skip scanner (see
            // net::contact): bitwise-identical windows, ~10x fewer
            // propagations at this mask.
            let w = fed.contact_plan_of(op, ground, 0.0, horizon_s, step_s);
            solo_cov += coverage_time_fraction(&w, 0.0, horizon_s);
            solo_out = solo_out.max(longest_outage_s(&w, 0.0, horizon_s));
        }
        solo_cov /= k as f64;
        let w = fed.contact_plan(ground, 0.0, horizon_s, step_s);
        let fed_cov = coverage_time_fraction(&w, 0.0, horizon_s);
        let barrier = entry_barrier(SatelliteClass::SmallSat, 66, k, &LaunchPricing::rideshare());
        println!(
            "{:<9} {:>13.1}% {:>16.0} {:>15.1}% {:>17.1}x",
            k,
            solo_cov * 100.0,
            solo_out,
            fed_cov * 100.0,
            barrier.monolithic_usd / barrier.federated_usd
        );
    }

    // Ground-segment disconnection: fraction of time a member's satellite
    // can see its own stations vs any station.
    print_header(
        "Ground-segment visibility (4 members, satellite 0 of each, 6 h)",
        &format!("{:<8} {:>16} {:>16}", "op", "own stations", "federated"),
    );
    let fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let mask = fed.snapshot_params.min_elevation_rad;
    let samples = 720;
    for op in fed.operator_ids() {
        let sat = fed.satellites_of(op)[0];
        let mut own = 0u32;
        let mut all = 0u32;
        for kk in 0..samples {
            let t = horizon_s * kk as f64 / samples as f64;
            let sat_ecef = openspace_orbit::frames::eci_to_ecef(sat.propagator.position_eci(t), t);
            let visible = |owner_filter: Option<_>| {
                fed.stations()
                    .iter()
                    .filter(|s| owner_filter.is_none_or(|o| s.owner == o))
                    .any(|s| {
                        openspace_orbit::visibility::is_visible(s.position_ecef, sat_ecef, mask)
                    })
            };
            if visible(Some(op)) {
                own += 1;
            }
            if visible(None) {
                all += 1;
            }
        }
        println!(
            "{:<8} {:>15.1}% {:>15.1}%",
            op.to_string(),
            own as f64 / samples as f64 * 100.0,
            all as f64 / samples as f64 * 100.0
        );
    }
    println!(
        "\nshape check: solo coverage shrinks roughly as 1/members while the \
         federated union stays ~100%; the shared ground segment multiplies \
         each satellite's backhaul windows."
    );
}
