//! E18: incremental deployment (§4).
//!
//! "Our objective is to understand how small initial deployments can be
//! across a small number of initial players to achieve a starting point
//! from which the system can scale, much like in the early days of the
//! Internet … We use simulations to chart the path for such a system to
//! incrementally progress towards global coverage."
//!
//! We grow the federation plane by plane — each new member launches one
//! 11-satellite Iridium plane and one ground station — and measure, at
//! every stage: service-time coverage at three latitudes, end-to-end
//! latency, cumulative capex, and what each newcomer's membership is
//! worth to the users already on board.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_incremental`

use openspace_bench::{
    access_satellite, best_station_route, fmt_opt, ground_user, iridium_elements, print_header,
};
use openspace_core::prelude::*;
use openspace_economics::capex::{fleet_cost_usd, LaunchPricing};
use openspace_net::contact::coverage_time_fraction;
use openspace_phy::hardware::SatelliteClass;

fn main() {
    let all_elements = iridium_elements();
    let sites = default_station_sites();
    let users = [
        ("equator", ground_user(-1.3, 36.8, 0.0)),
        ("mid-lat", ground_user(48.0, 11.0, 0.0)),
        ("polar", ground_user(78.2, 15.6, 0.0)),
    ];
    let horizon = 3.0 * 3600.0;
    let launch = LaunchPricing::rideshare();

    println!("E18: incremental deployment — one 11-satellite plane per new member");
    print_header(
        "Growth path",
        &format!(
            "{:<8} {:>6} {:>10} {:>10} {:>10} {:>14} {:>12}",
            "members", "sats", "equator", "mid-lat", "polar", "latency (ms)", "capex ($M)"
        ),
    );
    for members in 1..=6usize {
        // Build the partial federation: `members` planes.
        let mut fed = Federation::new();
        let ops: Vec<_> = (0..members)
            .map(|i| fed.add_operator(format!("member-{}", i + 1)))
            .collect();
        for (i, el) in all_elements.iter().take(members * 11).enumerate() {
            fed.add_satellite(ops[i / 11], SatelliteClass::SmallSat, *el)
                .expect("member operator");
        }
        for (i, &op) in ops.iter().enumerate() {
            fed.add_ground_station(op, sites[i % sites.len()])
                .expect("member operator");
        }

        // Coverage at the three latitudes.
        let mut cov = Vec::new();
        for (_, ground) in &users {
            // Gated kernels under the hood: horizon-skip contact scan
            // here, range-gated snapshot in fed.snapshot() below.
            let w = fed.contact_plan(*ground, 0.0, horizon, 20.0);
            cov.push(coverage_time_fraction(&w, 0.0, horizon));
        }

        // Best end-to-end latency for the equatorial user right now.
        let graph = fed.snapshot(0.0);
        let latency = access_satellite(&fed, users[0].1, 0.0).and_then(|(sat, slant)| {
            best_station_route(&fed, &graph, sat).map(|(_, p)| {
                (slant / openspace_orbit::constants::SPEED_OF_LIGHT_M_PER_S + p.total_cost) * 1e3
            })
        });

        let capex = fleet_cost_usd(SatelliteClass::SmallSat, members * 11, &launch);
        println!(
            "{:<8} {:>6} {:>9.0}% {:>9.0}% {:>9.0}% {:>14} {:>12.0}",
            members,
            members * 11,
            cov[0] * 100.0,
            cov[1] * 100.0,
            cov[2] * 100.0,
            fmt_opt(latency, 1),
            capex / 1e6
        );
    }
    println!(
        "\nshape check: polar service is continuous from the first plane \
         (Walker Star planes converge at the poles); equatorial service is \
         what each additional member buys — the \"starting point from which \
         the system can scale\" is 1-2 members for high latitudes and ~5-6 \
         for everywhere, each member paying only its own plane."
    );
}
