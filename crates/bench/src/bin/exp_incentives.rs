//! E14: collaboration incentives (§5 open problem (4)).
//!
//! "How can larger satellite provider companies be incentivized to join
//! OpenSpace and collaborate with smaller providers?" We build the
//! coalition game the federation actually plays — coalition value =
//! service-time coverage its combined fleet provides to a user base,
//! monetized superlinearly because continuous coverage sells and
//! patchwork does not — and split revenue by exact Shapley value.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_incentives`

use openspace_bench::{ground_user, iridium_elements, print_header};
use openspace_core::prelude::*;
use openspace_economics::incentives::{collaboration_surplus, shapley_shares};
use openspace_net::contact::coverage_time_fraction;
use openspace_phy::hardware::SatelliteClass;

fn main() {
    // An asymmetric federation: operator 1 is the incumbent with most of
    // the fleet; three small entrants split the rest.
    let mut fed = Federation::new();
    let big = fed.add_operator("incumbent");
    let smalls: Vec<_> = (0..3)
        .map(|i| fed.add_operator(format!("entrant-{}", i + 1)))
        .collect();
    for (i, el) in iridium_elements().into_iter().enumerate() {
        // 36 satellites to the incumbent, 10 to each entrant.
        let owner = if i < 36 { big } else { smalls[(i - 36) / 10] };
        fed.add_satellite(owner, SatelliteClass::SmallSat, el)
            .expect("member operator");
    }
    let members = fed.operator_ids();

    // Value of a coalition: mean service-time coverage over three user
    // sites, monetized as revenue ∝ coverage² (continuous coverage is
    // what subscriptions pay for; 50% patchwork is near-worthless).
    let sites = [
        ground_user(-1.3, 36.8, 0.0),
        ground_user(52.5, 13.4, 0.0),
        ground_user(35.7, 139.7, 0.0),
    ];
    let horizon = 3.0 * 3600.0;
    let coverage_of = |mask: u32| -> f64 {
        let sats: Vec<_> = fed
            .satellites()
            .iter()
            .filter(|s| {
                members
                    .iter()
                    .position(|&m| m == s.owner)
                    .is_some_and(|idx| mask & (1 << idx) != 0)
            })
            .map(|s| s.as_sat_node())
            .collect();
        if sats.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &site in &sites {
            let windows = openspace_net::contact::contact_plan(
                &sats,
                site,
                0.0,
                horizon,
                30.0,
                fed.snapshot_params.min_elevation_rad,
            );
            sum += coverage_time_fraction(&windows, 0.0, horizon);
        }
        sum / sites.len() as f64
    };
    const MARKET_USD_M: f64 = 100.0; // total annual market at full coverage
    let value = |mask: u32| {
        let c = coverage_of(mask);
        MARKET_USD_M * c * c
    };

    println!("E14: Shapley revenue sharing (incumbent 36 sats, entrants 10 each)");
    println!("(coalition value = $100M x coverage^2 over 3 sites, 3 h window)\n");
    let shares = shapley_shares(&members, value);
    let grand = value((1 << members.len()) - 1);

    print_header(
        "Shares",
        &format!(
            "{:<12} {:>6} {:>14} {:>14} {:>12} {:>10}",
            "member", "sats", "solo ($M)", "shapley ($M)", "gain ($M)", "rational?"
        ),
    );
    for s in &shares {
        let n_sats = fed.satellites_of(s.member).len();
        println!(
            "{:<12} {:>6} {:>14.1} {:>14.1} {:>+12.1} {:>10}",
            s.member.to_string(),
            n_sats,
            s.standalone_value,
            s.shapley_value,
            s.collaboration_gain(),
            if s.joining_is_rational() { "yes" } else { "NO" }
        );
    }
    println!(
        "\ngrand coalition value: ${grand:.1}M; collaboration surplus: ${:.1}M",
        collaboration_surplus(&shares, grand)
    );
    println!(
        "shape check: superlinear monetization of continuous coverage makes \
         joining rational for the incumbent too — the §5(4) incentive the \
         paper says the §3 cost model needs."
    );
}
