//! E15: provider and hardware diversity (§5 open problem (1)).
//!
//! "What is the precise mix of small and big satellite players that are
//! needed to realize OpenSpace? Defining these parameters requires
//! simulating the different kinds of satellites that could be deployed
//! as part of this system, including their technical diversity…"
//!
//! We sweep the hardware mix of a 66-satellite federation from all-
//! cubesat (RF-only, cheap) to all-broadband-bus (4 laser terminals,
//! expensive) and measure what the mix buys: ISL capacity, end-to-end
//! latency, fleet capex, and the capacity-per-dollar frontier.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_diversity`

use openspace_bench::{
    access_satellite, best_station_route, nairobi_user, print_header, standard_federation,
};
use openspace_economics::capex::{satellite_cost, LaunchPricing};
use openspace_net::topology::LinkTech;
use openspace_phy::hardware::SatelliteClass;

fn mix_classes(optical_share: f64) -> Vec<SatelliteClass> {
    // A repeating pattern approximating the share of laser-equipped
    // spacecraft.
    let n = 10usize;
    let optical = (optical_share * n as f64).round() as usize;
    let mut v = Vec::with_capacity(n);
    for i in 0..n {
        v.push(if i < optical {
            SatelliteClass::SmallSat
        } else {
            SatelliteClass::CubeSat
        });
    }
    v
}

fn main() {
    let user = nairobi_user();
    let launch = LaunchPricing::rideshare();

    println!("E15: hardware diversity sweep (66-satellite federation, 4 operators)");
    print_header(
        "Optical share sweep",
        &format!(
            "{:<10} {:>12} {:>14} {:>14} {:>14} {:>16}",
            "optical", "opt. ISLs", "bottleneck", "latency (ms)", "capex ($M)", "Mb/s per $M"
        ),
    );
    for share in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let classes = mix_classes(share);
        let fed = standard_federation(4, &classes);
        let graph = fed.snapshot(0.0);

        // Count optical ISLs and find the user's route to the Internet.
        let mut optical_links = 0usize;
        let mut total_links = 0usize;
        for u in 0..graph.satellite_count() {
            for e in graph.edges(u) {
                if e.to < graph.satellite_count() {
                    total_links += 1;
                    if e.technology == LinkTech::Optical {
                        optical_links += 1;
                    }
                }
            }
        }

        let (src_sat, _) = access_satellite(&fed, user, 0.0).expect("coverage");
        let best = best_station_route(&fed, &graph, src_sat);
        let (latency_ms, bottleneck) = best
            .map(|(_, p)| (p.total_cost * 1e3, p.bottleneck_bps(&graph).unwrap_or(0.0)))
            .unwrap_or((f64::NAN, 0.0));

        let capex: f64 = fed
            .satellites()
            .iter()
            .map(|s| satellite_cost(s.class, &launch).total_usd())
            .sum();
        println!(
            "{:<10} {:>10}/{:<3} {:>12} {:>14.1} {:>14.1} {:>16.2}",
            format!("{:.0}%", share * 100.0),
            optical_links / 2,
            total_links / 2,
            format!("{:.0} Mb/s", bottleneck / 1e6),
            latency_ms,
            capex / 1e6,
            bottleneck / 1e6 / (capex / 1e6),
        );
    }
    println!(
        "\nshape check: mixed fleets are the sweet spot — a modest optical \
         share multiplies bottleneck capacity while cubesats keep the \
         capex (and the entry barrier) low; all-optical pays ~3x the capex \
         of the 50% mix for diminishing capacity returns on mixed paths."
    );
}
