//! E16: ground-link band selection under weather (§2.1).
//!
//! "These ground stations operate on standardized radio links … except
//! for specific implementation details such as the exact spectrum bands
//! used for ground uplink and downlink, which may differ due to factors
//! such as atmospheric attenuation."
//!
//! We sweep rain rate over the Ku- and Ka-band gateway links and report
//! the achievable rate and the rain margin — the quantitative reason the
//! paper leaves band choice per-region.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_rain`

use openspace_bench::print_header;
use openspace_phy::prelude::*;

fn main() {
    let elevation = 25f64.to_radians();
    let distance_m = 1_500_000.0; // slant at 25 deg to a 780 km satellite

    println!("E16: gateway band choice under rain (25 deg elevation, 1500 km slant)");
    print_header(
        "Rain sweep",
        &format!(
            "{:<14} {:>14} {:>14} {:>14} {:>14}",
            "rain (mm/h)", "Ku loss (dB)", "Ka loss (dB)", "Ku (Mb/s)", "Ka (Mb/s)"
        ),
    );
    for rain in [0.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let mut rates = Vec::new();
        let mut losses = Vec::new();
        for band in [RfBand::Ku, RfBand::Ka] {
            let loss = total_atmospheric_loss_db(band, rain, elevation);
            let link = RfLink {
                tx: RfTerminal::gateway(),
                rx: RfTerminal::gateway(),
                band,
                distance_m,
                extra_loss_db: loss,
            };
            losses.push(loss);
            rates.push(link.achievable_rate_bps());
        }
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            rain,
            losses[0],
            losses[1],
            rates[0] / 1e6,
            rates[1] / 1e6
        );
    }

    println!(
        "\nclear-sky capacity favors Ka ({}x the Ku channel bandwidth); \
         heavy rain inverts the ranking — tropical gateways keep Ku, arid \
         ones exploit Ka, which is exactly the per-region flexibility \
         §2.1 asks transceivers to support.",
        (RfBand::Ka.channel_bandwidth_hz() / RfBand::Ku.channel_bandwidth_hz()).round()
    );
}
