//! E13: regulation-aware routing (§5 open problem (3)).
//!
//! "Different countries and regions have varying policies on satellite
//! communications … The ability to use satellites located in some
//! regions as relays for user traffic can also be impeded by diverse
//! user data privacy regulations."
//!
//! We assign each default ground station a jurisdiction, give operators
//! partial downlink license sets, and measure what privacy/licensing
//! constraints cost in latency — and when they sever connectivity
//! entirely.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_policy`

use openspace_bench::{access_satellite, nairobi_user, print_header, standard_federation};
use openspace_net::policy::{
    policy_route, DownlinkLicense, Jurisdiction, PolicyRoute, RoutePolicy, StationAttrs,
};
use openspace_net::routing::latency_weight;
use openspace_phy::hardware::SatelliteClass;

const EU: Jurisdiction = Jurisdiction(1);
const US: Jurisdiction = Jurisdiction(2);
const AF: Jurisdiction = Jurisdiction(3);
const AP: Jurisdiction = Jurisdiction(4);

fn main() {
    let fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let graph = fed.snapshot(0.0);
    // default_station_sites(): Bavaria, Virginia, Cape Town, Singapore,
    // Perth, Reykjavik.
    let attrs = vec![
        StationAttrs { jurisdiction: EU },
        StationAttrs { jurisdiction: US },
        StationAttrs { jurisdiction: AF },
        StationAttrs { jurisdiction: AP },
        StationAttrs { jurisdiction: AP },
        StationAttrs { jurisdiction: EU },
    ];
    // Every operator is licensed in EU and US; only op-1/op-2 in AP; only
    // op-3 in AF — the patchwork §5(3) describes.
    let mut licenses = Vec::new();
    for op in 1..=4u32 {
        licenses.push(DownlinkLicense {
            operator: op,
            jurisdiction: EU,
        });
        licenses.push(DownlinkLicense {
            operator: op,
            jurisdiction: US,
        });
    }
    licenses.push(DownlinkLicense {
        operator: 1,
        jurisdiction: AP,
    });
    licenses.push(DownlinkLicense {
        operator: 2,
        jurisdiction: AP,
    });
    licenses.push(DownlinkLicense {
        operator: 3,
        jurisdiction: AF,
    });

    // A user in Nairobi, uplinked via the nearest satellite.
    let pos = nairobi_user();
    let (src_sat, _) = access_satellite(&fed, pos, 0.0).expect("coverage");
    let src = graph.sat_node(src_sat);

    println!("E13: regulation-aware routing (Nairobi user)");
    print_header(
        "Policy sweep",
        &format!("{:<44} {:>10} {:>14}", "policy", "exit", "latency (ms)"),
    );
    let cases: Vec<(&str, RoutePolicy)> = vec![
        ("no constraints", RoutePolicy::permissive()),
        (
            "data must exit in EU",
            RoutePolicy {
                allowed_exit: vec![EU],
                blocked_carriers: vec![],
            },
        ),
        (
            "data must exit in AF (home region)",
            RoutePolicy {
                allowed_exit: vec![AF],
                blocked_carriers: vec![],
            },
        ),
        (
            "exit EU + distrust op-2 as carrier",
            RoutePolicy {
                allowed_exit: vec![EU],
                blocked_carriers: vec![2],
            },
        ),
        (
            "exit AF + distrust op-3 (the only AF licensee)",
            RoutePolicy {
                allowed_exit: vec![AF],
                blocked_carriers: vec![3],
            },
        ),
    ];
    for (label, policy) in cases {
        let r = policy_route(&graph, &attrs, &licenses, src, &policy, latency_weight);
        match r {
            PolicyRoute::Compliant { path, exit_station } => println!(
                "{:<44} {:>10} {:>14.1}",
                label,
                fed.stations()[exit_station].id.to_string(),
                path.total_cost * 1e3
            ),
            PolicyRoute::OnlyNonCompliant => {
                println!("{:<44} {:>10} {:>14}", label, "NONE", "policy-cut")
            }
            PolicyRoute::Unreachable => {
                println!("{:<44} {:>10} {:>14}", label, "NONE", "no route")
            }
        }
    }
    println!(
        "\nshape check: constraints monotonically raise latency by forcing \
         farther exits, and an adversarial combination (home-region exit + \
         distrusting its only licensee) severs connectivity — §5(3)'s \
         regulatory tension made concrete."
    );
}
