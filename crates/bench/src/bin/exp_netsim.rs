//! E11: packet-level routing study (§5 open problem (2)).
//!
//! The paper asks for "routing protocols that factor in the more
//! unpredictable components of user traffic, which cannot be accounted
//! for by proactive routing protocols computed based on known satellite
//! trajectories". This experiment runs actual packets with finite queues
//! over the Iridium federation snapshot: several uplink flows enter at
//! the *same* access satellite (a regional hotspot — e.g. a disaster
//! zone) and head for the same gateway, so the proactive router stacks
//! them all on one shortest path while the adaptive router spreads them
//! over the ISL mesh as queues build.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_netsim`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{access_satellite, nairobi_user, print_header, standard_federation, ExpRun};
use openspace_core::netsim::{
    EngineKind, FlowSpec, NetSim, NetSimConfig, RoutingMode, TrafficKind,
};
use openspace_phy::hardware::SatelliteClass;
use openspace_telemetry::{JsonValue, MemoryRecorder};

fn main() {
    let mut run = ExpRun::from_args("exp_netsim", 11);
    // `OPENSPACE_NETSIM_ENGINE=heap|calendar` selects the event engine
    // (default calendar); either choice yields the same report bits.
    let engine = EngineKind::from_env();
    run.digest_config(&format!(
        "flows=4 packet=1500 duration_s=20 queue=512KiB seed=11 sweep=[5,10,20,40,60]Mbps engine={}",
        engine.name()
    ));

    // RF-only fleet: S-band ISL capacities (~27 Mbit/s) make congestion
    // real at megabit flow rates.
    run.phase("setup");
    let fed = standard_federation(4, &[SatelliteClass::CubeSat]);
    let graph = fed.snapshot(0.0);

    // A regional hotspot: all flows uplink through the satellite over
    // Nairobi and exit at the Bavaria gateway.
    let pos = nairobi_user();
    let (src_sat, _) = access_satellite(&fed, pos, 0.0).expect("coverage over Nairobi");
    let src = graph.sat_node(src_sat);
    let dst = graph.station_node(0);

    let n_flows = 4usize;
    if run.human() {
        println!(
            "E11: packet-level proactive vs adaptive routing \
             ({n_flows} Poisson flows through one access satellite -> {})",
            fed.stations()[0].id
        );
        print_header(
            "Aggregate offered load sweep (1500 B packets, 20 s runs)",
            &format!(
                "{:<12} {:>12} {:>12} {:>14} {:>14} {:>10}",
                "offered", "pro deliv", "ada deliv", "pro p95 (ms)", "ada p95 (ms)", "pro drops"
            ),
        );
    }
    run.phase("load sweep");
    let mut sweep = Vec::new();
    for aggregate in [5.0e6, 10.0e6, 20.0e6, 40.0e6, 60.0e6] {
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|_| FlowSpec {
                src,
                dst,
                rate_bps: aggregate / n_flows as f64,
                packet_bytes: 1_500,
                kind: TrafficKind::Poisson,
            })
            .collect();
        let base = NetSimConfig {
            duration_s: 20.0,
            queue_capacity_bytes: 512 * 1024,
            routing: RoutingMode::Proactive,
            seed: 11,
            engine,
        };
        let pro = NetSim::new(base)
            .with_snapshot(&graph)
            .run_recorded(&flows, run.rec())
            .expect("valid config");
        let ada = NetSim::new(NetSimConfig {
            routing: RoutingMode::Adaptive {
                replan_interval_s: 1.0,
            },
            ..base
        })
        .with_snapshot(&graph)
        .run_recorded(&flows, run.rec())
        .expect("valid netsim config");
        sweep.push(JsonValue::object([
            ("offered_bps", JsonValue::Num(aggregate)),
            ("proactive_delivery", JsonValue::Num(pro.delivery_ratio)),
            ("adaptive_delivery", JsonValue::Num(ada.delivery_ratio)),
            ("proactive_p95_s", JsonValue::Num(pro.p95_latency_s)),
            ("adaptive_p95_s", JsonValue::Num(ada.p95_latency_s)),
            ("proactive_drops", JsonValue::Uint(pro.dropped)),
        ]));
        if run.human() {
            println!(
                "{:<12} {:>11.1}% {:>11.1}% {:>14.1} {:>14.1} {:>10}",
                format!("{:.0} Mb/s", aggregate / 1e6),
                pro.delivery_ratio * 100.0,
                ada.delivery_ratio * 100.0,
                pro.p95_latency_s * 1e3,
                ada.p95_latency_s * 1e3,
                pro.dropped,
            );
        }
    }
    run.push_extra("sweep", JsonValue::Array(sweep));
    if run.human() {
        println!(
            "\nshape check: identical at light load; once the shared shortest \
             path saturates, the proactive router drops what the adaptive \
             router re-routes across the mesh (§5(2))."
        );
    }

    // Engine cross-check (manifest only): the calendar queue is a
    // drop-in for the reference heap. Re-run the mid-sweep point on both
    // engines and require bit-identical reports — the same guarantee the
    // `engine_equivalence` property suite pins, asserted here on the
    // exact workload this experiment publishes.
    run.phase("engine cross-check");
    {
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|_| FlowSpec {
                src,
                dst,
                rate_bps: 20.0e6 / n_flows as f64,
                packet_bytes: 1_500,
                kind: TrafficKind::Poisson,
            })
            .collect();
        let base = NetSimConfig {
            duration_s: 20.0,
            queue_capacity_bytes: 512 * 1024,
            routing: RoutingMode::Proactive,
            seed: 11,
            engine: EngineKind::Heap,
        };
        let mut heap_rec = MemoryRecorder::new();
        let heap = NetSim::new(base)
            .with_snapshot(&graph)
            .run_recorded(&flows, &mut heap_rec)
            .expect("valid netsim config");
        let mut cal_rec = MemoryRecorder::new();
        let cal = NetSim::new(NetSimConfig {
            engine: EngineKind::Calendar,
            ..base
        })
        .with_snapshot(&graph)
        .run_recorded(&flows, &mut cal_rec)
        .expect("valid netsim config");
        assert_eq!(
            heap, cal,
            "heap and calendar engines must produce bit-identical reports"
        );
        // Load counters from the run on the engine this invocation uses.
        let rec = match engine {
            EngineKind::Heap => &heap_rec,
            EngineKind::Calendar => &cal_rec,
        };
        run.push_extra(
            "engine",
            JsonValue::object([
                ("kind", JsonValue::Str(engine.name().to_string())),
                (
                    "events_processed",
                    JsonValue::Uint(rec.counter("engine.events_processed")),
                ),
                (
                    "queue_depth_high_water",
                    JsonValue::Num(rec.maximum("engine.queue_depth_high_water").unwrap_or(0.0)),
                ),
                (
                    "slab_high_water",
                    JsonValue::Num(rec.maximum("netsim.engine.slab_high_water").unwrap_or(0.0)),
                ),
                (
                    "bucket_resizes",
                    JsonValue::Uint(rec.counter("netsim.engine.bucket_resizes")),
                ),
                ("cross_check_delivered", JsonValue::Uint(cal.delivered)),
            ]),
        );
    }

    // Planner batching demo (manifest only): the replan-heavy shape —
    // many flows, few sources — that the batched RoutePlanner exists
    // for. 96 flows from 3 access satellites; the per-flow baseline
    // re-runs Dijkstra per flow, the planner grows one tree per source.
    // Only deterministic work counters go into the manifest (wall clock
    // stays in the quarantined "wall" block).
    run.phase("planner batching");
    {
        use openspace_net::routing::{latency_weight, shortest_path_recorded, RoutePlanner};
        use openspace_net::topology::NodeId;

        let n = graph.node_count();
        let n_sats = graph.satellite_count();
        let sources = [
            src,
            graph.sat_node((src_sat + 5) % n_sats),
            graph.sat_node((src_sat + 11) % n_sats),
        ];
        let requests: Vec<(NodeId, NodeId)> = (0..96)
            .map(|i| (sources[i % sources.len()], NodeId((i * 11) % n)))
            .collect();

        let mut per_flow = MemoryRecorder::new();
        for &(s, d) in &requests {
            shortest_path_recorded(&graph, s, d, latency_weight, &mut per_flow);
        }
        let mut batched = MemoryRecorder::new();
        RoutePlanner::new().plan_recorded(&graph, &requests, latency_weight, &mut batched);

        let solo_visited = per_flow.counter("routing.nodes_visited");
        let plan_visited = batched.counter("routing.nodes_visited");
        // One adaptive netsim replan cycle through the same planner, so
        // the manifest shows the integration counters too.
        let mut netsim_rec = MemoryRecorder::new();
        let flows: Vec<FlowSpec> = (0..24)
            .map(|i| FlowSpec {
                src: sources[i % sources.len()],
                dst,
                rate_bps: 2.0e5,
                packet_bytes: 1_500,
                kind: TrafficKind::Poisson,
            })
            .collect();
        NetSim::new(NetSimConfig {
            duration_s: 10.0,
            queue_capacity_bytes: 512 * 1024,
            routing: RoutingMode::Adaptive {
                replan_interval_s: 1.0,
            },
            seed: 11,
            engine,
        })
        .with_snapshot(&graph)
        .run_recorded(&flows, &mut netsim_rec)
        .expect("valid netsim config");

        run.push_extra(
            "planner",
            JsonValue::object([
                ("flows", JsonValue::Uint(requests.len() as u64)),
                ("sources", JsonValue::Uint(sources.len() as u64)),
                ("per_flow_nodes_visited", JsonValue::Uint(solo_visited)),
                ("planner_nodes_visited", JsonValue::Uint(plan_visited)),
                (
                    "visited_reduction",
                    JsonValue::Num(solo_visited as f64 / plan_visited.max(1) as f64),
                ),
                (
                    "netsim_trees",
                    JsonValue::Uint(netsim_rec.counter("routing.planner.trees")),
                ),
                (
                    "netsim_recomputes",
                    JsonValue::Uint(netsim_rec.counter("routing.recomputes")),
                ),
                (
                    "netsim_nodes_visited",
                    JsonValue::Uint(netsim_rec.counter("routing.nodes_visited")),
                ),
                (
                    "netsim_scratch_reuses",
                    JsonValue::Uint(netsim_rec.counter("routing.planner.scratch_reuses")),
                ),
            ]),
        );
        assert!(
            plan_visited * 2 <= solo_visited,
            "planner must at least halve visited work for this shape \
             ({plan_visited} vs {solo_visited})"
        );
    }
    run.finish();
}
