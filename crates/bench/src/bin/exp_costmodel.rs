//! E7: the §3 cost model — cross-verifiable ledgers, settlement, and
//! emergent peering.
//!
//! Two traffic matrices are run through the full delivery + accounting
//! pipeline: a symmetric mesh (every operator's users everywhere) and a
//! skewed one (one operator's users dominate). The paper's claims:
//! ledgers cross-verify, prices stay bilateral, and "if two providers
//! realize they are routing similar amounts of traffic through each
//! other's systems … they may decide to peer."
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_costmodel`

use openspace_bench::{ground_user, print_header, standard_federation};
use openspace_core::prelude::*;
use openspace_economics::prelude::*;
use openspace_net::routing::QosRequirement;
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::types::OperatorId;
use std::collections::BTreeMap;

const SITES: [(f64, f64); 8] = [
    (-1.3, 36.8),
    (52.5, 13.4),
    (35.7, 139.7),
    (-33.9, 151.2),
    (40.7, -74.0),
    (-23.5, -46.6),
    (19.1, 72.9),
    (64.1, -21.9),
];

/// Run a traffic pattern; `home_of(i)` assigns user i's home operator.
fn run_pattern(
    label: &str,
    home_of: impl Fn(usize, &[OperatorId]) -> OperatorId,
) -> (Vec<OperatorId>, BTreeMap<OperatorId, TrafficLedger>) {
    let mut fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let ops = fed.operator_ids();
    let users: Vec<(User, _)> = SITES
        .iter()
        .enumerate()
        .map(|(i, &(lat, lon))| {
            let u = fed
                .register_user(home_of(i, &ops))
                .expect("member operator");
            (u, ground_user(lat, lon, 0.0))
        })
        .collect();
    let mut ledgers = BTreeMap::new();
    let mut ok = 0;
    for slot in 0..12u64 {
        let t = slot as f64 * 300.0;
        let graph = fed.snapshot(t);
        for (i, (user, pos)) in users.iter().enumerate() {
            if deliver(
                &fed,
                &graph,
                user,
                *pos,
                t,
                slot * 100 + i as u64,
                100_000_000,
                &QosRequirement::best_effort(),
                &mut ledgers,
            )
            .is_ok()
            {
                ok += 1;
            }
        }
    }
    println!("\n### {label}: {ok} deliveries");
    (ops, ledgers)
}

fn report(ops: &[OperatorId], ledgers: &BTreeMap<OperatorId, TrafficLedger>) {
    // Cross-verification.
    let mut clean = true;
    let mut items = 0;
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            if let (Some(la), Some(lb)) = (ledgers.get(&a), ledgers.get(&b)) {
                let r = reconcile(la, lb, a, b);
                clean &= r.is_clean();
                items += r.agreed;
            }
        }
    }
    println!(
        "cross-verification: {items} items, {}",
        if clean { "CLEAN" } else { "DISPUTED" }
    );

    // Settlement.
    let matrix = SettlementMatrix::from_ledgers(ledgers, &PriceBook::new(4.0));
    print_header(
        "Net positions ($4/GiB transit)",
        &format!("{:<8} {:>14}", "op", "net (USD)"),
    );
    for &op in ops {
        println!("{:<8} {:>+14.2}", op.to_string(), matrix.net_position(op));
    }
    println!("conservation check: sum = {:+.6}", matrix.total_imbalance());

    // Peering.
    let policy = PeeringPolicy {
        max_asymmetry: 0.3,
        min_bytes_each_way: 1 << 29,
    };
    print_header(
        "Peering verdicts (within 30%, >=0.5 GiB each way)",
        &format!("{:<16} {}", "pair", "verdict"),
    );
    for (i, &a) in ops.iter().enumerate() {
        for &b in &ops[i + 1..] {
            if let Some(l) = ledgers.get(&a) {
                let v = match evaluate_peering(l, a, b, &policy) {
                    PeeringVerdict::RecommendPeering { .. } => "PEER".to_string(),
                    PeeringVerdict::KeepTransit { asymmetry } => {
                        format!("transit (asymmetry {:.0}%)", asymmetry * 100.0)
                    }
                    PeeringVerdict::TooSmall => "too small".to_string(),
                };
                println!("{:<16} {v}", format!("{a} <-> {b}"));
            }
        }
    }
}

fn main() {
    println!("E7: cost model — ledgers, settlement, peering");

    let (ops, ledgers) = run_pattern(
        "symmetric mesh (users of all operators everywhere)",
        |i, ops| ops[i % ops.len()],
    );
    report(&ops, &ledgers);

    let (ops, ledgers) = run_pattern("skewed (operator 1 owns 6 of 8 users)", |i, ops| {
        if i < 6 {
            ops[0]
        } else {
            ops[1 + i % 3]
        }
    });
    report(&ops, &ledgers);

    println!(
        "\nshape check: symmetric traffic yields near-zero net positions and \
         peering recommendations; skewed traffic leaves the heavy origin \
         paying and keeps relationships transit."
    );
}
