//! E12: the price of flying solo — store-and-forward vs federated relay.
//!
//! §2: a non-collaborating operator's satellites are "completely
//! disconnected from the rest of their infrastructure for significant
//! periods of time". Because orbits are public, the disconnections are
//! scheduled, and the solo operator's only recourse is delay-tolerant
//! store-and-forward along its own contact plan. This experiment
//! measures bundle delivery latency from a satellite to the operator's
//! ground segment: solo (DTN over its own contacts) vs federated
//! (instant multi-hop relay over the shared mesh).
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_dtn`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{fmt_opt, print_header, standard_federation, ExpRun};
use openspace_net::dtn::{earliest_arrival_with_retry_recorded, sample_contacts, RetryPolicy};
use openspace_net::routing::{latency_weight, shortest_path_recorded};
use openspace_phy::hardware::SatelliteClass;
use openspace_telemetry::JsonValue;

fn main() {
    let mut run = ExpRun::from_args("exp_dtn", 0);
    run.digest_config("members=4 horizon_s=10800 bundle_bits=8e7 starts=[0,1800,3600,5400]");
    let fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let horizon_s = 3.0 * 3600.0;
    let bundle_bits = 80.0 * 1e6; // a 10 MB sensor bundle

    if run.human() {
        println!("E12: solo store-and-forward vs federated relay (10 MB bundle, 3 h plan)");
        print_header(
            "Per-operator bundle delivery from its first satellite",
            &format!(
                "{:<8} {:>20} {:>22} {:>16}",
                "op", "solo DTN (s)", "federated relay (ms)", "speedup"
            ),
        );
    }

    run.phase("per-operator comparison");
    let mut operators = Vec::new();
    for op in fed.operator_ids() {
        // Solo: the operator's own satellites + own stations only.
        let solo_sats = fed.sat_nodes_of(op);
        let solo_stations = fed.ground_nodes_of(op);
        let contacts = sample_contacts(
            &solo_sats,
            &solo_stations,
            0.0,
            horizon_s,
            10.0,
            &fed.snapshot_params,
        );
        let n_nodes = solo_sats.len() + solo_stations.len();
        // Mean delivery delay over bundle creation times spread through
        // the plan (a single start time can luck into an overhead pass).
        let starts: Vec<f64> = (0..4).map(|k| k as f64 * 1_800.0).collect();
        let mut delays = Vec::new();
        for &t0 in &starts {
            let best = (0..solo_stations.len())
                .filter_map(|gi| {
                    earliest_arrival_with_retry_recorded(
                        &contacts,
                        n_nodes,
                        0, // the operator's first satellite
                        solo_sats.len() + gi,
                        t0,
                        bundle_bits,
                        &[],
                        RetryPolicy::default(),
                        run.rec(),
                    )
                    .ok()
                })
                .map(|r| r.arrival_s - t0)
                .fold(f64::INFINITY, f64::min);
            if best.is_finite() {
                delays.push(best);
            }
        }
        let solo = (!delays.is_empty()).then(|| delays.iter().sum::<f64>() / delays.len() as f64);

        // Federated: immediate relay over the full snapshot, charged at
        // the chosen path's bottleneck rate.
        let graph = fed.snapshot(0.0);
        let global_index = fed
            .satellites()
            .iter()
            .position(|s| s.owner == op)
            .expect("operator has satellites");
        let fed_latency = (0..fed.stations().len())
            .filter_map(|gi| {
                shortest_path_recorded(
                    &graph,
                    graph.sat_node(global_index),
                    graph.station_node(gi),
                    latency_weight,
                    run.rec(),
                )
            })
            .map(|p| p.total_cost + bundle_bits / p.bottleneck_bps(&graph).unwrap_or(f64::INFINITY))
            .fold(f64::INFINITY, f64::min);

        let speedup = solo.map(|s| s.max(1e-3) / fed_latency);
        operators.push(JsonValue::object([
            ("operator", JsonValue::Str(op.to_string())),
            ("solo_dtn_s", solo.map_or(JsonValue::Null, JsonValue::Num)),
            ("federated_relay_s", JsonValue::Num(fed_latency)),
            ("speedup", speedup.map_or(JsonValue::Null, JsonValue::Num)),
        ]));
        if run.human() {
            println!(
                "{:<8} {:>20} {:>22.1} {:>15}x",
                op.to_string(),
                fmt_opt(solo, 1),
                fed_latency * 1e3,
                fmt_opt(speedup, 0)
            );
        }
    }
    run.push_extra("operators", JsonValue::Array(operators));

    if run.human() {
        println!(
            "\nshape check: solo operators wait minutes-to-hours for their next \
             own-ground-station pass; the federation relays the same bundle in \
             a few hundred milliseconds — the paper's core collaboration \
             argument in one table."
        );
    }
    run.finish();
}
