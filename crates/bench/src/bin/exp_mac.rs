//! E5: CSMA/CA vs scheduled MAC on satellite channels.
//!
//! §2.1: "CSMA/CA allows for flexibility in synchronization between
//! satellites, however is prone to higher overhead and corresponding
//! larger latency due to Inter-Frame Spacing and backoff window
//! requirements." This sweep quantifies the claim on an S-band ISL
//! channel, and isolates the orbital-propagation-delay penalty the
//! paper's concern rests on.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_mac`

use openspace_bench::print_header;
use openspace_mac::prelude::*;

fn main() {
    let params = MacParams::s_band_isl();
    let duration = 20.0;

    println!("E5: MAC comparison on an S-band ISL channel (5 Mbit/s, 1000 km hops)");
    print_header(
        "Contention sweep (saturated nodes; `theory` = Bianchi model)",
        &format!(
            "{:<6} {:>12} {:>12} {:>12} {:>16} {:>16} {:>12}",
            "nodes",
            "CSMA eff.",
            "theory",
            "TDMA eff.",
            "CSMA delay(ms)",
            "TDMA delay(ms)",
            "collisions"
        ),
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let csma = simulate_csma_ca(&params, n, duration, 42);
        let theory = bianchi_saturation(&params, n);
        let tdma = evaluate_tdma(&params, &TdmaConfig::for_leo(&params, n));
        println!(
            "{:<6} {:>11.1}% {:>11.1}% {:>11.1}% {:>16.2} {:>16.2} {:>11.1}%",
            n,
            csma.channel_efficiency * 100.0,
            theory.throughput * 100.0,
            tdma.channel_efficiency * 100.0,
            csma.mean_access_delay_s * 1e3,
            tdma.mean_access_delay_s * 1e3,
            csma.collision_rate * 100.0
        );
    }

    // The propagation-delay ablation: the identical channel at
    // terrestrial distance.
    print_header(
        "Ablation: propagation delay (8 saturated nodes)",
        &format!(
            "{:<22} {:>14} {:>16}",
            "one-way delay", "CSMA eff.", "CSMA delay (ms)"
        ),
    );
    for (label, delay) in [
        ("1 us  (terrestrial)", 1e-6),
        ("0.3 ms (100 km)", 3.3e-4),
        ("3.3 ms (1000 km ISL)", 3.3e-3),
        ("13 ms (4000 km ISL)", 1.33e-2),
    ] {
        let mut p = params;
        p.propagation_delay_s = delay;
        let r = simulate_csma_ca(&p, 8, duration, 42);
        println!(
            "{:<22} {:>13.1}% {:>16.2}",
            label,
            r.channel_efficiency * 100.0,
            r.mean_access_delay_s * 1e3
        );
    }

    // The future-work MAC: DAMA reservation access on the same channel.
    print_header(
        "DAMA (reservation MAC) vs CSMA/CA at saturation",
        &format!(
            "{:<6} {:>14} {:>14} {:>16} {:>16}",
            "nodes", "DAMA eff.", "CSMA eff.", "DAMA delay(ms)", "CSMA delay(ms)"
        ),
    );
    let dama_params = DamaParams::s_band_isl();
    for n in [4usize, 16, 64] {
        let dama = simulate_dama(&dama_params, n, 1.0e6, duration, 42);
        let csma = simulate_csma_ca(&params, n, duration, 42);
        println!(
            "{:<6} {:>13.1}% {:>13.1}% {:>16.2} {:>16.2}",
            n,
            dama.channel_efficiency * 100.0,
            csma.channel_efficiency * 100.0,
            dama.mean_access_delay_s * 1e3,
            csma.mean_access_delay_s * 1e3
        );
    }

    // Satellite-to-ground: the OFDMA downlink grid of §2.1.
    print_header(
        "OFDMA downlink scheduling (Ku beam, 60 x 4 MHz subchannels)",
        &format!(
            "{:<26} {:>14} {:>14} {:>14}",
            "scenario", "user A rate", "user B rate", "user C rate"
        ),
    );
    let grid = OfdmaGrid::ku_beam();
    let users = |da: f64, db: f64, dc: f64| {
        vec![
            UserDemand {
                user_id: 1,
                demand_bps: da,
                spectral_efficiency: 4.0,
            },
            UserDemand {
                user_id: 2,
                demand_bps: db,
                spectral_efficiency: 4.0,
            },
            UserDemand {
                user_id: 3,
                demand_bps: dc,
                spectral_efficiency: 1.5,
            }, // edge of beam
        ]
    };
    for (label, demands, policy) in [
        (
            "equal demand, round-robin",
            users(200e6, 200e6, 200e6),
            Policy::RoundRobin,
        ),
        (
            "skewed demand, round-robin",
            users(400e6, 50e6, 50e6),
            Policy::RoundRobin,
        ),
        (
            "skewed demand, proportional",
            users(400e6, 50e6, 50e6),
            Policy::ProportionalDemand,
        ),
    ] {
        let alloc = grid.schedule(&demands, policy);
        println!(
            "{:<26} {:>11.0} Mb {:>11.0} Mb {:>11.0} Mb",
            label,
            alloc[0].rate_bps / 1e6,
            alloc[1].rate_bps / 1e6,
            alloc[2].rate_bps / 1e6
        );
    }

    // Beacon overhead: the broadcast presence channel of §2.2.
    let beacon = BeaconSchedule::openspace_default();
    print_header(
        "Beacon channel overhead",
        &format!(
            "{:<12} {:>16} {:>22}",
            "neighbors", "overhead", "mean discovery (s)"
        ),
    );
    for n in [5usize, 20, 50, 200] {
        println!(
            "{:<12} {:>15.2}% {:>22.2}",
            n,
            beacon.overhead_fraction(n) * 100.0,
            beacon.mean_discovery_latency_s()
        );
    }
    println!(
        "\nshape check: TDMA efficiency is flat in contention while CSMA/CA \
         decays with collisions; orbital propagation delay alone costs \
         CSMA/CA most of its efficiency."
    );
}
