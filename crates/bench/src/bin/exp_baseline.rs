//! E19: the monolithic baseline — what does federation cost the user?
//!
//! The paper's pitch stands or falls on this: "While these firms may
//! individually not be capable of offering a connected global network,
//! we envision connecting their satellites … together results in global
//! coverage." A skeptic's question is what the federated architecture
//! *loses* versus a vertically-integrated incumbent flying the same
//! constellation. Answer: nothing in coverage or data-plane latency
//! (the physics is identical), a bounded control-plane cost (roaming
//! authentication rides ISLs to the home AAA), and a 4× lower entry
//! barrier per firm.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_baseline`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{ground_user, print_header, standard_federation, ExpRun};
use openspace_core::prelude::*;
use openspace_net::contact::coverage_time_fraction;
use openspace_net::routing::QosRequirement;
use openspace_phy::hardware::SatelliteClass;
use openspace_telemetry::{JsonValue, Recorder};
use std::collections::BTreeMap;

fn main() {
    let mut run = ExpRun::from_args("exp_baseline", 1);
    run.digest_config(
        "sites=[Nairobi,Berlin,Sydney] systems=[monolith:1,federated:4] horizon_s=3600",
    );
    let sites = [
        ("Nairobi", -1.3, 36.8),
        ("Berlin", 52.5, 13.4),
        ("Sydney", -33.9, 151.2),
    ];
    if run.human() {
        println!("E19: monolithic incumbent vs 4-member federation, same 66 satellites");
        print_header(
            "Service comparison",
            &format!(
                "{:<10} {:<12} {:>10} {:>14} {:>14} {:>12}",
                "user", "system", "coverage", "assoc (ms)", "deliver (ms)", "roaming"
            ),
        );
    }

    run.phase("site comparison");
    let mut comparison = Vec::new();
    for (name, lat, lon) in sites {
        let pos = ground_user(lat, lon, 0.0);
        for (label, members) in [("monolith", 1usize), ("federated", 4)] {
            let mut fed = standard_federation(members, &[SatelliteClass::SmallSat]);
            let home = fed.operator_ids()[0];
            let user = fed.register_user(home).expect("member operator");

            // Recorded variants surface the horizon-skip scanner's and
            // the range-gated snapshot builder's counters in the
            // manifest; outputs are bitwise-identical to the plain
            // calls.
            let windows = fed.contact_plan_recorded(pos, 0.0, 3_600.0, 10.0, run.rec());
            let cov = coverage_time_fraction(&windows, 0.0, 3_600.0);

            let assoc = associate(&mut fed, &user, pos, 0.0, 1).expect("association");
            let graph = fed.snapshot_recorded(0.0, run.rec());
            let mut ledgers = BTreeMap::new();
            let delivery = deliver(
                &fed,
                &graph,
                &user,
                pos,
                0.0,
                1,
                1 << 20,
                &QosRequirement::best_effort(),
                &mut ledgers,
            )
            .expect("delivery");

            run.rec().add("baseline.deliveries", 1);
            run.rec().observe("baseline.coverage", cov);
            run.rec()
                .observe("baseline.assoc_latency_s", assoc.association_latency_s);
            run.rec()
                .observe("baseline.delivery_latency_s", delivery.latency_s);
            comparison.push(JsonValue::object([
                ("site", JsonValue::Str(name.into())),
                ("system", JsonValue::Str(label.into())),
                ("coverage", JsonValue::Num(cov)),
                (
                    "assoc_latency_s",
                    JsonValue::Num(assoc.association_latency_s),
                ),
                ("delivery_latency_s", JsonValue::Num(delivery.latency_s)),
                ("roaming", JsonValue::Bool(assoc.roaming)),
            ]));
            if run.human() {
                println!(
                    "{:<10} {:<12} {:>9.1}% {:>14.1} {:>14.1} {:>12}",
                    name,
                    label,
                    cov * 100.0,
                    assoc.association_latency_s * 1e3,
                    delivery.latency_s * 1e3,
                    if assoc.roaming { "yes" } else { "no" }
                );
            }
        }
    }
    run.push_extra("comparison", JsonValue::Array(comparison));

    if run.human() {
        println!(
            "\nshape check: coverage and data-plane latency are identical — the \
             constellation physics does not care who owns which satellite. The \
             federated column pays only a control-plane tax (association may \
             route to a farther home-operator ground station) and gains the \
             1/members entry barrier of exp_federation."
        );
    }
    run.finish();
}
