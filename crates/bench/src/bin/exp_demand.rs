//! E21: a million users wake up (§5 open problem (1)).
//!
//! The paper's democratized constellation exists to serve people, and
//! people are not uniform: they cluster in cities, sleep at night, and
//! stream in the evening. This experiment synthesizes a 1.2M-user
//! population grid (no external data — seeded land-mass and Zipf city
//! synthesis), sweeps a full diurnal day of offered load, attaches
//! every populated cell to the federation's covering satellites and
//! gateways, and then contrasts the four-member federation against a
//! single member going it alone on three axes:
//!
//! 1. demand-weighted coverage (fraction of *users*, not area, served),
//! 2. packet delivery over a compressed simulated day with flows that
//!    activate and retire at demand-tick boundaries, and
//! 3. the settlement ledgers the demand-weighted traffic generates.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_demand`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{print_header, standard_federation, ExpRun};
use openspace_core::demand::record_coverage;
use openspace_core::netsim::{
    DemandWorkload, EngineKind, FlowSpec, NetSim, NetSimConfig, RoutingMode,
};
use openspace_core::prelude::demand_flows_for;
use openspace_core::prelude::demand_ledgers;
use openspace_demand::grid::{PopulationConfig, PopulationGrid};
use openspace_demand::mix::AppMix;
use openspace_demand::model::{DemandConfig, DemandModel, DemandTick};
use openspace_economics::settlement::{PriceBook, SettlementMatrix};
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::exec::default_threads;
use openspace_telemetry::{JsonValue, Recorder};

fn main() {
    let mut run = ExpRun::from_args("exp_demand", 13);
    run.digest_config(
        "grid=36x72 users=1.2M cities=160 seed=13 mix=broadband step=3600s horizon=86400s \
         members=4 netsim[scale=1.5e-3 min_flow=2e3 cap=96 tick=5s dur=125s]",
    );
    let threads = default_threads();
    run.set_threads(threads);

    // ---- Population & diurnal day ------------------------------------
    run.phase("population");
    let grid = PopulationGrid::build(&PopulationConfig {
        lat_cells: 36,
        lon_cells: 72,
        total_users: 1_200_000,
        cities: 160,
        seed: 13,
        ..Default::default()
    })
    .expect("valid population config");
    let populated = grid.populated_cell_count();
    let top = grid.top_cells(5);
    let model = DemandModel::new(grid.clone(), AppMix::broadband(), DemandConfig::default())
        .expect("valid demand config");
    if run.human() {
        println!(
            "E21: demand-aware federation study ({} users in {} populated cells)",
            grid.total_users(),
            populated,
        );
        print_header(
            "Diurnal day (UTC, broadband mix, 10% cell jitter)",
            &format!(
                "{:<6} {:>14} {:>14} {:>10} {:>10}",
                "hour", "offered (Gb/s)", "active users", "cells", "flows"
            ),
        );
    }

    run.phase("diurnal day");
    let ticks: Vec<DemandTick> = model
        .demand_timeline_recorded(3_600.0, 86_400.0, threads, run.rec())
        .expect("valid timeline bounds");
    let mut day = Vec::new();
    let mut peak = f64::MIN;
    let mut trough = f64::MAX;
    for tick in &ticks {
        peak = peak.max(tick.offered_bps);
        trough = trough.min(tick.offered_bps);
        day.push(JsonValue::object([
            ("hour", JsonValue::Num(tick.t_s / 3_600.0)),
            ("offered_bps", JsonValue::Num(tick.offered_bps)),
            ("active_users", JsonValue::Num(tick.active_users)),
            ("active_cells", JsonValue::Uint(tick.active_cells)),
            ("flows", JsonValue::Uint(tick.flows.len() as u64)),
        ]));
        if run.human() && (tick.t_s as u64).is_multiple_of(10_800) {
            println!(
                "{:<6} {:>14.3} {:>14.0} {:>10} {:>10}",
                format!("{:02}:00", (tick.t_s / 3_600.0) as u64 % 24),
                tick.offered_bps / 1e9,
                tick.active_users,
                tick.active_cells,
                tick.flows.len(),
            );
        }
    }
    let swing = peak / trough;
    run.push_extra("diurnal_day", JsonValue::Array(day));
    run.push_extra(
        "population",
        JsonValue::object([
            ("users", JsonValue::Uint(grid.total_users())),
            ("populated_cells", JsonValue::Uint(populated as u64)),
            ("top_cell_users", JsonValue::Uint(top[0].1)),
            ("diurnal_swing", JsonValue::Num(swing)),
        ]),
    );
    if run.human() {
        println!("\ndiurnal swing (peak/trough offered load): {swing:.2}x");
    }

    // ---- Demand-weighted coverage: federation vs solo ----------------
    run.phase("attach");
    let mut fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let coverage = fed.attach_demand_cells(&grid, 0.0);
    record_coverage(&coverage, run.rec());
    let users = fed
        .register_cell_users(&coverage)
        .expect("covering operators are members");
    run.rec().add("demand.users_registered", users.len() as u64);

    let ids = fed.operator_ids();
    let mut solo_fracs = Vec::new();
    let mut solo_json = Vec::new();
    let mut largest_solo = (ids[0], 0u64);
    for &op in &ids {
        let solo = fed.attach_demand_cells_solo(op, &grid, 0.0);
        if solo.covered_users > largest_solo.1 {
            largest_solo = (op, solo.covered_users);
        }
        solo_fracs.push(solo.covered_fraction());
        solo_json.push(JsonValue::object([
            ("operator", JsonValue::Uint(op.0 as u64)),
            ("covered_fraction", JsonValue::Num(solo.covered_fraction())),
            ("covered_users", JsonValue::Uint(solo.covered_users)),
        ]));
    }
    let mean_solo = solo_fracs.iter().sum::<f64>() / solo_fracs.len() as f64;
    let by_op = coverage.users_by_operator();
    run.push_extra(
        "coverage",
        JsonValue::object([
            (
                "federated_fraction",
                JsonValue::Num(coverage.covered_fraction()),
            ),
            ("federated_users", JsonValue::Uint(coverage.covered_users)),
            ("mean_solo_fraction", JsonValue::Num(mean_solo)),
            ("solo", JsonValue::Array(solo_json)),
        ]),
    );
    if run.human() {
        print_header(
            "Demand-weighted coverage at t=0 (fraction of users, not area)",
            &format!("{:<22} {:>12} {:>14}", "fleet", "covered", "users"),
        );
        println!(
            "{:<22} {:>11.1}% {:>14}",
            "federation (4 ops)",
            coverage.covered_fraction() * 100.0,
            coverage.covered_users,
        );
        println!(
            "{:<22} {:>11.1}% {:>14}",
            "mean solo member",
            mean_solo * 100.0,
            largest_solo.1,
        );
        for (op, n) in &by_op {
            println!("  home users op {:<6} {:>26}", op.0, n);
        }
    }

    // ---- Compressed simulated day on the packet simulator ------------
    // One real day cannot run at packet granularity, so hour h of the
    // demand model becomes simulated second 5·h: the flow *population*
    // follows the diurnal day while rates are scaled to the transport
    // budget. Offered-load accounting stays unscaled throughout.
    run.phase("netsim day");
    let sim_model = DemandModel::new(
        grid.clone(),
        AppMix::broadband(),
        DemandConfig {
            transport_scale: 1.5e-3,
            min_flow_bps: 2.0e3,
            max_flows_per_tick: 96,
            ..Default::default()
        },
    )
    .expect("valid demand config");
    let cfg = NetSimConfig {
        duration_s: 125.0,
        queue_capacity_bytes: 512 * 1024,
        routing: RoutingMode::Proactive,
        seed: 13,
        engine: EngineKind::from_env(),
    };

    let full_graph = fed.snapshot(0.0);
    let solo_op = largest_solo.0;
    let solo_cov = fed.attach_demand_cells_solo(solo_op, &grid, 0.0);
    let solo_graph = fed.solo_snapshot(solo_op, 0.0);

    let build = |cov: &openspace_core::demand::CellCoverage,
                 graph: &openspace_net::topology::Graph| {
        let mut batches: Vec<(f64, Vec<FlowSpec>)> = Vec::new();
        let mut mapped = 0u64;
        let mut unserved_bps = 0.0;
        for h in 0..24u64 {
            let tick = sim_model.flows_at(h as f64 * 3_600.0);
            let (flows, stats) = demand_flows_for(cov, &tick, graph);
            mapped += stats.flows_mapped;
            unserved_bps += stats.unserved_bps;
            batches.push((h as f64 * 5.0, flows));
        }
        let workload = DemandWorkload::new(batches).expect("ticks strictly increasing");
        (workload, mapped, unserved_bps)
    };
    let (full_workload, full_mapped, full_unserved) = build(&coverage, &full_graph);
    let (solo_workload, solo_mapped, solo_unserved) = build(&solo_cov, &solo_graph);

    let full_report = NetSim::new(cfg)
        .with_snapshot(&full_graph)
        .with_demand(&full_workload)
        .run_recorded(&[], run.rec())
        .expect("valid netsim config");
    let solo_report = NetSim::new(cfg)
        .with_snapshot(&solo_graph)
        .with_demand(&solo_workload)
        .run_recorded(&[], run.rec())
        .expect("valid netsim config");

    run.push_extra(
        "netsim_day",
        JsonValue::object([
            ("federated_flows", JsonValue::Uint(full_mapped)),
            (
                "federated_delivered",
                JsonValue::Uint(full_report.delivered),
            ),
            (
                "federated_delivery",
                JsonValue::Num(full_report.delivery_ratio),
            ),
            ("federated_p95_s", JsonValue::Num(full_report.p95_latency_s)),
            (
                "federated_unroutable",
                JsonValue::Uint(full_report.unroutable),
            ),
            ("federated_unserved_bps", JsonValue::Num(full_unserved)),
            ("solo_flows", JsonValue::Uint(solo_mapped)),
            ("solo_delivered", JsonValue::Uint(solo_report.delivered)),
            ("solo_delivery", JsonValue::Num(solo_report.delivery_ratio)),
            ("solo_unroutable", JsonValue::Uint(solo_report.unroutable)),
            ("solo_unserved_bps", JsonValue::Num(solo_unserved)),
        ]),
    );
    if run.human() {
        print_header(
            "Compressed diurnal day on the packet simulator (hour = 5 s)",
            &format!(
                "{:<22} {:>10} {:>12} {:>10} {:>16}",
                "fleet", "flows", "delivered", "deliv %", "unserved (Gb/s)"
            ),
        );
        println!(
            "{:<22} {:>10} {:>12} {:>9.1}% {:>16.3}",
            "federation (4 ops)",
            full_mapped,
            full_report.delivered,
            full_report.delivery_ratio * 100.0,
            full_unserved / 1e9,
        );
        println!(
            "{:<22} {:>10} {:>12} {:>9.1}% {:>16.3}",
            format!("solo op {}", solo_op.0),
            solo_mapped,
            solo_report.delivered,
            solo_report.delivery_ratio * 100.0,
            solo_unserved / 1e9,
        );
        println!(
            "\nunroutable packets: federation {}, solo {} — the lone fleet's \
             ISL mesh is too sparse to reach its gateways (§2's case for pooling)",
            full_report.unroutable, solo_report.unroutable,
        );
    }

    // ---- Settlement: who carried whose demand ------------------------
    run.phase("economics");
    let (ledgers, intra_bytes) = demand_ledgers(&coverage, &ticks[..24], 3_600.0);
    let matrix = SettlementMatrix::from_ledgers_recorded(&ledgers, &PriceBook::new(2.0), run.rec());
    let mut cross_bytes = 0u64;
    for &a in &ids {
        for &b in &ids {
            if a == b {
                continue;
            }
            let origin_view = ledgers.get(&a).map_or(0, |l| l.bytes_carried(a, b));
            let carrier_view = ledgers.get(&b).map_or(0, |l| l.bytes_carried(a, b));
            assert_eq!(
                origin_view, carrier_view,
                "§3 cross-verification failed for {a:?}->{b:?}"
            );
            cross_bytes += origin_view;
        }
    }
    let mut positions = Vec::new();
    if run.human() {
        print_header(
            "Daily demand-weighted settlement (hourly items, 2.0 /GB)",
            &format!("{:<12} {:>16}", "operator", "net position"),
        );
    }
    for &op in &ids {
        let net = matrix.net_position(op);
        positions.push(JsonValue::object([
            ("operator", JsonValue::Uint(op.0 as u64)),
            ("net_position", JsonValue::Num(net)),
        ]));
        if run.human() {
            println!("{:<12} {:>16.2}", format!("op {}", op.0), net);
        }
    }
    let net_sum: f64 = ids.iter().map(|&op| matrix.net_position(op)).sum();
    run.push_extra(
        "settlement",
        JsonValue::object([
            ("cross_operator_bytes", JsonValue::Uint(cross_bytes)),
            ("intra_operator_bytes", JsonValue::Uint(intra_bytes)),
            ("net_positions", JsonValue::Array(positions)),
        ]),
    );
    if run.human() {
        println!(
            "\ncross-operator demand: {:.2} GB/day billed, {:.2} GB/day stays in-network",
            cross_bytes as f64 / 1e9,
            intra_bytes as f64 / 1e9,
        );
    }

    // ---- Headline claims, enforced -----------------------------------
    assert!(
        grid.total_users() >= 1_000_000,
        "the study must aggregate at least a million users"
    );
    assert!(
        swing >= 1.15,
        "diurnal swing must be visible in aggregate offered load ({swing:.3})"
    );
    assert!(
        coverage.covered_fraction() > mean_solo,
        "federated coverage must beat the mean solo member ({:.3} vs {mean_solo:.3})",
        coverage.covered_fraction()
    );
    assert!(
        full_mapped > solo_mapped,
        "the federation must serve more demand flows than the largest solo member"
    );
    assert!(
        full_report.delivered > solo_report.delivered,
        "the federation must deliver more packets than the largest solo member \
         ({} vs {})",
        full_report.delivered,
        solo_report.delivered
    );
    assert!(
        net_sum.abs() < 1e-6,
        "settlement must be zero-sum ({net_sum})"
    );
    run.finish();
}
