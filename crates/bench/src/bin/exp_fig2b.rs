//! E2 / Figure 2(b): propagation latency vs constellation size.
//!
//! Paper: "increasing the number of satellites in the simulation
//! dramatically reduces the inter-satellite latency up to about 25
//! satellites, after which latency values average about 30ms", and the
//! caption: "the constellation requires a minimum of about four
//! satellites to guarantee that a satellite will orbit in range."
//!
//! We regenerate the curve under the paper's simplified model and, for
//! honesty, under the physical model (elevation-masked pickup and
//! line-of-sight ISLs), where the same sweep shows up as an availability
//! curve.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_fig2b`

use openspace_bench::{fmt_opt, print_header};
use openspace_core::study::{latency_vs_satellites, StudyConfig, StudyModel};

fn main() {
    let sizes = [2, 4, 6, 8, 12, 16, 20, 25, 30, 40, 50, 65, 80, 100];
    let cfg = StudyConfig {
        trials: 20,
        epochs_per_trial: 8,
        ..Default::default()
    };

    println!("Figure 2(b): propagation latency vs constellation size");
    println!(
        "user {:.1}N {:.1}E -> station {:.1}N {:.1}E, {} trials x {} epochs",
        cfg.user.lat_deg(),
        cfg.user.lon_deg(),
        cfg.station.lat_deg(),
        cfg.station.lon_deg(),
        cfg.trials,
        cfg.epochs_per_trial
    );

    print_header(
        "Paper's simplified model (nearest pickup, distance-graph ISLs)",
        &format!(
            "{:<6} {:>8} {:>14} {:>10}",
            "n", "reach", "latency (ms)", "mean hops"
        ),
    );
    for p in latency_vs_satellites(&cfg, &sizes) {
        println!(
            "{:<6} {:>8.2} {:>14} {:>10}",
            p.n_satellites,
            p.reachability,
            fmt_opt(p.mean_latency_ms, 1),
            fmt_opt(p.mean_hops, 2)
        );
    }

    let phys = StudyConfig {
        model: StudyModel::Physical,
        ..cfg
    };
    print_header(
        "Physical model (horizon-masked pickup, line-of-sight ISLs)",
        &format!(
            "{:<6} {:>8} {:>14} {:>10}",
            "n", "avail", "latency (ms)", "mean hops"
        ),
    );
    for p in latency_vs_satellites(&phys, &sizes) {
        println!(
            "{:<6} {:>8.2} {:>14} {:>10}",
            p.n_satellites,
            p.reachability,
            fmt_opt(p.mean_latency_ms, 1),
            fmt_opt(p.mean_hops, 2)
        );
    }

    println!(
        "\nshape check: latency falls steeply to ~25 satellites, then \
         plateaus near 30 ms; availability under the physical model is \
         what small constellations actually lack."
    );
}
