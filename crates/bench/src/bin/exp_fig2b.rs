//! E2 / Figure 2(b): propagation latency vs constellation size.
//!
//! Paper: "increasing the number of satellites in the simulation
//! dramatically reduces the inter-satellite latency up to about 25
//! satellites, after which latency values average about 30ms", and the
//! caption: "the constellation requires a minimum of about four
//! satellites to guarantee that a satellite will orbit in range."
//!
//! We regenerate the curve under the paper's simplified model and, for
//! honesty, under the physical model (elevation-masked pickup and
//! line-of-sight ISLs), where the same sweep shows up as an availability
//! curve. The sweep runs on the shared [`ScenarioRunner`] harness:
//! ephemeris samples are memoized across size points and the points fan
//! out over a worker pool, with output bitwise-identical to a serial run.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_fig2b`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{fmt_opt, print_header, study_runner, timed, ExpRun, FIG2B_SIZES};
use openspace_core::prelude::*;
use openspace_telemetry::{JsonValue, Recorder};

fn print_points(points: &[LatencyPoint]) {
    for p in points {
        println!(
            "{:<6} {:>8.2} {:>14} {:>10}",
            p.n_satellites,
            p.reachability,
            fmt_opt(p.mean_latency_ms, 1),
            fmt_opt(p.mean_hops, 2)
        );
    }
}

fn points_json(points: &[LatencyPoint]) -> JsonValue {
    JsonValue::Array(
        points
            .iter()
            .map(|p| {
                JsonValue::object([
                    ("n_satellites", JsonValue::Uint(p.n_satellites as u64)),
                    ("reachability", JsonValue::Num(p.reachability)),
                    (
                        "mean_latency_ms",
                        p.mean_latency_ms.map_or(JsonValue::Null, JsonValue::Num),
                    ),
                    (
                        "mean_hops",
                        p.mean_hops.map_or(JsonValue::Null, JsonValue::Num),
                    ),
                ])
            })
            .collect(),
    )
}

fn main() {
    let mut run = ExpRun::from_args("exp_fig2b", 20);
    run.digest_config("trials=20 epochs=8 sizes=FIG2B models=[simplified,physical]");
    let runner = study_runner(20, 8);
    let cfg = *runner.config();
    run.set_threads(runner.threads());

    if run.human() {
        println!("Figure 2(b): propagation latency vs constellation size");
        println!(
            "user {:.1}N {:.1}E -> station {:.1}N {:.1}E, {} trials x {} epochs, {} worker threads",
            cfg.user.lat_deg(),
            cfg.user.lon_deg(),
            cfg.station.lat_deg(),
            cfg.station.lon_deg(),
            cfg.trials,
            cfg.epochs_per_trial,
            runner.threads()
        );

        print_header(
            "Paper's simplified model (nearest pickup, distance-graph ISLs)",
            &format!(
                "{:<6} {:>8} {:>14} {:>10}",
                "n", "reach", "latency (ms)", "mean hops"
            ),
        );
    }
    run.phase("simplified sweep");
    let (points, harness_time) = timed(|| runner.latency_vs_satellites(&FIG2B_SIZES));
    run.rec().add("fig2b.points", points.len() as u64);
    run.push_extra("simplified", points_json(&points));
    if run.human() {
        print_points(&points);
    }

    run.phase("physical sweep");
    let phys = ScenarioRunner::parallel(StudyConfig {
        model: StudyModel::Physical,
        ..cfg
    });
    if run.human() {
        print_header(
            "Physical model (horizon-masked pickup, line-of-sight ISLs)",
            &format!(
                "{:<6} {:>8} {:>14} {:>10}",
                "n", "avail", "latency (ms)", "mean hops"
            ),
        );
    }
    let phys_points = phys.latency_vs_satellites(&FIG2B_SIZES);
    run.rec().add("fig2b.points", phys_points.len() as u64);
    run.push_extra("physical", points_json(&phys_points));
    if run.human() {
        print_points(&phys_points);
    }

    // Harness accounting: what memoization + the worker pool buy over the
    // pre-harness loop (a fresh serial propagation per size point), and
    // that they buy it without changing a single output bit.
    run.phase("legacy serial comparison");
    let (legacy_points, legacy_time) = timed(|| {
        FIG2B_SIZES
            .iter()
            .flat_map(|&n| ScenarioRunner::serial(cfg).latency_vs_satellites(&[n]))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        points, legacy_points,
        "harness output must be bitwise-identical to the per-point serial loop"
    );
    run.rec().add("fig2b.cache_hits", runner.cache().hits());
    run.rec().add("fig2b.cache_misses", runner.cache().misses());
    if run.human() {
        println!(
            "\nharness timing (simplified model): per-point serial {:.2}s -> cached parallel {:.2}s ({:.1}x), {} cache hits / {} misses, identical output",
            legacy_time.as_secs_f64(),
            harness_time.as_secs_f64(),
            legacy_time.as_secs_f64() / harness_time.as_secs_f64().max(1e-9),
            runner.cache().hits(),
            runner.cache().misses(),
        );

        println!(
            "\nshape check: latency falls steeply to ~25 satellites, then \
             plateaus near 30 ms; availability under the physical model is \
             what small constellations actually lack."
        );
    }
    run.finish();
}
