//! E17: routing in a rapidly changing topology (Figure 1, item 2).
//!
//! The paper's overview promises "routing in a rapidly changing network
//! topology". Three measurements:
//!
//! 1. **ISL churn**: how many links appear/disappear per minute as the
//!    Walker constellation rotates (cross-plane links churn; same-plane
//!    links persist), and how long a precomputed route survives.
//! 2. **Delta timeline**: the same churn, precomputed once as a
//!    [`TopologyTimeline`](openspace_net::timeline::TopologyTimeline)
//!    — a base snapshot plus compact per-tick
//!    deltas — with the compression ratio in the manifest.
//! 3. **Packets over a moving constellation**: the dynamic packet
//!    simulator re-snapshots the topology as satellites move; delivery
//!    continues across route handovers. The run is driven twice — once
//!    rebuilding every snapshot from orbit propagation, once replaying
//!    the precomputed deltas — and the reports are asserted
//!    bitwise-identical.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_topology`
//! (add `--json` for a machine-readable run manifest on stdout).

use openspace_bench::{access_satellite, nairobi_user, print_header, standard_federation, ExpRun};
use openspace_core::netsim::{FlowSpec, NetSim, NetSimConfig, RoutingMode, TrafficKind};
use openspace_net::routing::{latency_weight, shortest_path};
use openspace_net::timeline::TopologyProvider;
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::exec::default_threads;
use openspace_telemetry::{JsonValue, Recorder};
use std::collections::BTreeSet;

fn main() {
    let mut run = ExpRun::from_args("exp_topology", 21);
    run.digest_config(
        "iridium members=4 class=SmallSat churn_step_s=60 timeline_step_s=30 \
         horizon_s=240 duration_s=240 seed=21",
    );
    run.phase("setup");
    let fed = standard_federation(4, &[SatelliteClass::SmallSat]);

    // 1. ISL churn over one orbital period.
    let period = fed.satellites()[0].propagator.elements().period_s();
    let step = 60.0;
    if run.human() {
        println!(
            "E17: topology dynamics (Iridium federation, {:.0} min period)",
            period / 60.0
        );
        print_header(
            "ISL churn per minute",
            &format!(
                "{:<10} {:>8} {:>10} {:>10}",
                "t (min)", "links", "appeared", "vanished"
            ),
        );
    }
    run.phase("churn scan");
    let edge_set = |t: f64| -> BTreeSet<(usize, usize)> {
        let g = fed.snapshot(t);
        let mut s = BTreeSet::new();
        for u in 0..g.satellite_count() {
            for e in g.edges(u) {
                if e.to < g.satellite_count() && e.to > u {
                    s.insert((u, e.to.index()));
                }
            }
        }
        s
    };
    let mut prev = edge_set(0.0);
    let mut total_churn = 0usize;
    for k in 1..=10 {
        let t = k as f64 * step;
        let cur = edge_set(t);
        let appeared = cur.difference(&prev).count();
        let vanished = prev.difference(&cur).count();
        total_churn += appeared + vanished;
        if run.human() {
            println!(
                "{:<10.0} {:>8} {:>10} {:>10}",
                t / 60.0,
                cur.len(),
                appeared,
                vanished
            );
        }
        prev = cur;
    }
    run.rec().add("churn.link_events", total_churn as u64);
    if run.human() {
        println!(
            "mean churn: {:.1} link events/min",
            total_churn as f64 / 10.0
        );
    }

    // Route survival: how long does the t=0 route stay valid?
    let pos = nairobi_user();
    let (sat0, _) = access_satellite(&fed, pos, 0.0).expect("coverage");
    let g0 = fed.snapshot(0.0);
    let route0 = shortest_path(&g0, g0.sat_node(sat0), g0.station_node(0), latency_weight)
        .expect("route exists");
    let mut survival = 0.0;
    for k in 1..=60 {
        let t = k as f64 * 30.0;
        let g = fed.snapshot(t);
        let alive = route0
            .nodes
            .windows(2)
            .all(|w| g.find_edge(w[0], w[1]).is_some());
        if alive {
            survival = t;
        } else {
            break;
        }
    }
    run.rec().add("route.survival_s", survival as u64);
    if run.human() {
        println!(
            "the t=0 route ({} hops) survives {:.0} s of constellation motion",
            route0.hops(),
            survival
        );
    }

    // 2. The same churn, precomputed as a delta timeline: one base
    // snapshot plus a compact per-tick delta, built in parallel (the
    // build is bitwise thread-count-invariant).
    run.phase("timeline build");
    let horizon = 240.0;
    let interval = 30.0;
    let tl = fed
        .timeline(interval, horizon, default_threads())
        .expect("valid timeline horizon");
    let nodes = g0.node_count();
    let changed = tl.total_changed_rows();
    let full_rows = nodes * tl.delta_count();
    run.rec().add("timeline.deltas", tl.delta_count() as u64);
    run.rec().add("timeline.changed_rows", changed as u64);
    if run.human() {
        println!(
            "\ntimeline: {} deltas over {horizon:.0} s touch {changed} adjacency \
             rows ({:.1}% of the {} a full rebuild would copy)",
            tl.delta_count(),
            100.0 * changed as f64 / full_rows.max(1) as f64,
            full_rows
        );
    }
    run.push_extra(
        "timeline",
        JsonValue::object([
            ("step_s", JsonValue::Num(tl.step_s())),
            ("deltas", JsonValue::Uint(tl.delta_count() as u64)),
            ("changed_rows", JsonValue::Uint(changed as u64)),
            ("full_rebuild_rows", JsonValue::Uint(full_rows as u64)),
        ]),
    );

    // 3. Packets over the moving constellation: the provider path
    // rebuilds every snapshot from orbit propagation; the timeline path
    // replays the precomputed deltas. Same packets, bit for bit.
    if run.human() {
        print_header(
            "Dynamic packet simulation (240 s, re-snapshot every 30 s)",
            &format!(
                "{:<14} {:>12} {:>12} {:>14}",
                "mode", "delivery", "drops", "mean lat (ms)"
            ),
        );
    }
    run.phase("dynamic packets");
    let flows = [FlowSpec {
        src: g0.sat_node(sat0),
        dst: g0.station_node(0),
        rate_bps: 2.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    let mut modes = Vec::new();
    for (label, routing) in [
        ("proactive", RoutingMode::Proactive),
        (
            "adaptive",
            RoutingMode::Adaptive {
                replan_interval_s: 5.0,
            },
        ),
    ] {
        let cfg = NetSimConfig {
            duration_s: horizon,
            queue_capacity_bytes: 512 * 1024,
            routing,
            seed: 21,
            ..Default::default()
        };
        let rebuilt = NetSim::new(cfg)
            .with_provider(&fed, interval)
            .run(&flows)
            .expect("valid netsim config");
        let replayed = NetSim::new(cfg)
            .with_timeline(&tl)
            .run_recorded(&flows, run.rec())
            .expect("valid netsim config");
        assert_eq!(
            rebuilt, replayed,
            "delta replay must be bitwise-identical to full rebuild ({label})"
        );
        modes.push(JsonValue::object([
            ("mode", JsonValue::Str(label.into())),
            ("delivery_ratio", JsonValue::Num(replayed.delivery_ratio)),
            ("dropped", JsonValue::Uint(replayed.dropped)),
            ("mean_latency_s", JsonValue::Num(replayed.mean_latency_s)),
        ]));
        if run.human() {
            println!(
                "{:<14} {:>11.1}% {:>12} {:>14.1}",
                label,
                replayed.delivery_ratio * 100.0,
                replayed.dropped,
                replayed.mean_latency_s * 1e3
            );
        }
    }
    run.push_extra("dynamic", JsonValue::Array(modes));
    // Shape check: a federation is itself a topology provider, so the
    // timeline base must equal the t=0 snapshot.
    assert_eq!(fed.topology_at(0.0).edge_count(), tl.base().edge_count());
    if run.human() {
        println!(
            "\nshape check: same-plane ISLs persist while cross-plane links churn \
             steadily; periodic route recomputation (possible because orbits are \
             public) keeps packet delivery near 100% across the motion, and the \
             delta-replay refresh reproduces the rebuild run bit for bit."
        );
    }
    run.finish();
}
