//! E17: routing in a rapidly changing topology (Figure 1, item 2).
//!
//! The paper's overview promises "routing in a rapidly changing network
//! topology". Two measurements:
//!
//! 1. **ISL churn**: how many links appear/disappear per minute as the
//!    Walker constellation rotates (cross-plane links churn; same-plane
//!    links persist), and how long a precomputed route survives.
//! 2. **Packets over a moving constellation**: the dynamic packet
//!    simulator re-snapshots the topology as satellites move; delivery
//!    continues across route handovers.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_topology`

use openspace_bench::{access_satellite, nairobi_user, print_header, standard_federation};
use openspace_core::netsim::{
    run_netsim_dynamic, FlowSpec, NetSimConfig, RoutingMode, TrafficKind,
};
use openspace_net::routing::{latency_weight, shortest_path};
use openspace_phy::hardware::SatelliteClass;
use std::collections::BTreeSet;

fn main() {
    let fed = standard_federation(4, &[SatelliteClass::SmallSat]);

    // 1. ISL churn over one orbital period.
    let period = fed.satellites()[0].propagator.elements().period_s();
    let step = 60.0;
    println!(
        "E17: topology dynamics (Iridium federation, {:.0} min period)",
        period / 60.0
    );
    print_header(
        "ISL churn per minute",
        &format!(
            "{:<10} {:>8} {:>10} {:>10}",
            "t (min)", "links", "appeared", "vanished"
        ),
    );
    let edge_set = |t: f64| -> BTreeSet<(usize, usize)> {
        let g = fed.snapshot(t);
        let mut s = BTreeSet::new();
        for u in 0..g.satellite_count() {
            for e in g.edges(u) {
                if e.to < g.satellite_count() && e.to > u {
                    s.insert((u, e.to.index()));
                }
            }
        }
        s
    };
    let mut prev = edge_set(0.0);
    let mut total_churn = 0usize;
    for k in 1..=10 {
        let t = k as f64 * step;
        let cur = edge_set(t);
        let appeared = cur.difference(&prev).count();
        let vanished = prev.difference(&cur).count();
        total_churn += appeared + vanished;
        println!(
            "{:<10.0} {:>8} {:>10} {:>10}",
            t / 60.0,
            cur.len(),
            appeared,
            vanished
        );
        prev = cur;
    }
    println!(
        "mean churn: {:.1} link events/min",
        total_churn as f64 / 10.0
    );

    // Route survival: how long does the t=0 route stay valid?
    let pos = nairobi_user();
    let (sat0, _) = access_satellite(&fed, pos, 0.0).expect("coverage");
    let g0 = fed.snapshot(0.0);
    let route0 = shortest_path(&g0, g0.sat_node(sat0), g0.station_node(0), latency_weight)
        .expect("route exists");
    let mut survival = 0.0;
    for k in 1..=60 {
        let t = k as f64 * 30.0;
        let g = fed.snapshot(t);
        let alive = route0
            .nodes
            .windows(2)
            .all(|w| g.find_edge(w[0], w[1]).is_some());
        if alive {
            survival = t;
        } else {
            break;
        }
    }
    println!(
        "the t=0 route ({} hops) survives {:.0} s of constellation motion",
        route0.hops(),
        survival
    );

    // 2. Packets over the moving constellation.
    print_header(
        "Dynamic packet simulation (240 s, re-snapshot every 30 s)",
        &format!(
            "{:<14} {:>12} {:>12} {:>14}",
            "mode", "delivery", "drops", "mean lat (ms)"
        ),
    );
    let provider = |t: f64| fed.snapshot(t);
    let flows = [FlowSpec {
        src: g0.sat_node(sat0),
        dst: g0.station_node(0),
        rate_bps: 2.0e6,
        packet_bytes: 1_500,
        kind: TrafficKind::Poisson,
    }];
    for (label, routing) in [
        ("proactive", RoutingMode::Proactive),
        (
            "adaptive",
            RoutingMode::Adaptive {
                replan_interval_s: 5.0,
            },
        ),
    ] {
        let r = run_netsim_dynamic(
            &provider,
            30.0,
            &flows,
            &NetSimConfig {
                duration_s: 240.0,
                queue_capacity_bytes: 512 * 1024,
                routing,
                seed: 21,
            },
        )
        .expect("valid netsim config");
        println!(
            "{:<14} {:>11.1}% {:>12} {:>14.1}",
            label,
            r.delivery_ratio * 100.0,
            r.dropped,
            r.mean_latency_s * 1e3
        );
    }
    println!(
        "\nshape check: same-plane ISLs persist while cross-plane links churn \
         steadily; periodic route recomputation (possible because orbits are \
         public) keeps packet delivery near 100% across the motion."
    );
}
