//! E10: the association and roaming-authentication flow of §2.2.
//!
//! Paper claims quantified:
//! * association requires a home-AAA round trip over ISLs; the cost
//!   depends on how far the user roams from the home operator's ground
//!   segment;
//! * "re-authentication is a rare event relative to satellite handoffs"
//!   — we count both over a simulated day;
//! * handovers ride the session token and cost one access round trip.
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_association`

use openspace_bench::{ground_user, print_header, standard_federation};
use openspace_core::prelude::*;
use openspace_net::handover::service_schedule;
use openspace_phy::hardware::SatelliteClass;

fn main() {
    let mut fed = standard_federation(4, &[SatelliteClass::SmallSat]);
    let home = fed.operator_ids()[0];

    println!("E10: association and roaming authentication");
    print_header(
        "Association cost by user location (home operator op-1)",
        &format!(
            "{:<24} {:>10} {:>12} {:>16} {:>10}",
            "user site", "roaming", "auth hops", "assoc (ms)", "access(ms)"
        ),
    );
    let sites = [
        ("Bavaria (home GS)", 48.1, 11.2),
        ("Nairobi", -1.3, 36.8),
        ("Tokyo", 35.7, 139.7),
        ("mid-Pacific", -5.0, -150.0),
        ("McMurdo (78S)", -77.8, 166.7),
    ];
    for (i, (name, lat, lon)) in sites.iter().enumerate() {
        let user = fed.register_user(home).expect("member operator");
        let pos = ground_user(*lat, *lon, 0.0);
        match associate(&mut fed, &user, pos, 0.0, 1 + i as u64) {
            Ok(a) => println!(
                "{:<24} {:>10} {:>12} {:>16.1} {:>10.2}",
                name,
                if a.roaming { "yes" } else { "no" },
                a.auth_path_hops,
                a.association_latency_s * 1e3,
                a.access_delay_s * 1e3
            ),
            Err(e) => println!("{:<24} FAILED: {e}", name),
        }
    }

    // Re-auth rarity: handovers vs re-associations over a day. A user
    // moves between cities every 8 hours (very mobile!); satellites hand
    // over every few minutes.
    print_header(
        "Events over 24 h (user relocates every 8 h; certificate: 24 h)",
        &format!("{:<28} {:>10}", "event", "count"),
    );
    let day = 86_400.0;
    let mut handovers = 0usize;
    let mut reassociations = 0usize;
    for (k, (_, lat, lon)) in sites.iter().take(3).enumerate() {
        let pos = ground_user(*lat, *lon, 0.0);
        let t0 = k as f64 * day / 3.0;
        let t1 = (k + 1) as f64 * day / 3.0;
        // Day-scale plans are where the horizon-skip scanner pays off:
        // identical windows, most below-mask samples never propagated.
        let windows = fed.contact_plan(pos, t0, t1, 10.0);
        let sched = service_schedule(&windows, t0, t1).expect("valid service window");
        handovers += sched.handovers;
        reassociations += 1; // one re-auth per relocation
    }
    println!("{:<28} {:>10}", "satellite handovers", handovers);
    println!("{:<28} {:>10}", "re-authentications", reassociations);
    println!(
        "{:<28} {:>10.0}",
        "handovers per re-auth",
        handovers as f64 / reassociations as f64
    );
    println!(
        "\nshape check: association costs one ISL-routed AAA round trip that \
         grows with distance from the home ground segment; handovers \
         outnumber re-authentications by orders of magnitude, which is \
         what makes token handover worth designing for."
    );
}
