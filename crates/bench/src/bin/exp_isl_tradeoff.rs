//! E6: the RF-vs-laser ISL tradeoff of §2.1.
//!
//! Paper claims quantified:
//! * "Laser technology offers a higher throughput than RF, with lower
//!   energy cost. However, they are more expensive … about $500,000 per
//!   terminal and occupying 0.0234 \[m³\] of volume and at least 15 kg."
//! * "OpenSpace satellites must permit RF-based communication links at a
//!   minimum and optionally also support standardized laser-based links."
//!
//! Run: `cargo run -p openspace-bench --release --bin exp_isl_tradeoff`

use openspace_bench::print_header;
use openspace_economics::pricing::HopEconomics;
use openspace_phy::prelude::*;

fn main() {
    println!("E6: ISL technology tradeoff (S-band / UHF RF vs 1550 nm optical)");

    let optical = OpticalTerminal::conlct80_class();
    print_header(
        "Throughput and energy per bit vs ISL distance",
        &format!(
            "{:<10} {:>14} {:>14} {:>14} {:>16} {:>16}",
            "d (km)", "UHF (kb/s)", "S (Mb/s)", "opt (Gb/s)", "S J/bit", "opt J/bit"
        ),
    );
    for d_km in [200.0, 500.0, 1000.0, 2000.0, 4000.0, 6000.0] {
        let d = d_km * 1000.0;
        let uhf = RfLink {
            tx: RfTerminal::smallsat(),
            rx: RfTerminal::smallsat(),
            band: RfBand::Uhf,
            distance_m: d,
            extra_loss_db: 0.0,
        };
        let s = RfLink {
            tx: RfTerminal::midsat(),
            rx: RfTerminal::midsat(),
            band: RfBand::S,
            distance_m: d,
            extra_loss_db: 0.0,
        };
        let opt_rate = openspace_phy::optical::achievable_rate_bps(&optical, &optical, d);
        let opt_epb = openspace_phy::optical::energy_per_bit_j(&optical, &optical, d);
        println!(
            "{:<10.0} {:>14.1} {:>14.2} {:>14.2} {:>16.2e} {:>16.2e}",
            d_km,
            uhf.achievable_rate_bps() / 1e3,
            s.achievable_rate_bps() / 1e6,
            opt_rate / 1e9,
            s.energy_per_bit_j(),
            opt_epb
        );
    }

    // Hardware cost/mass — the accessibility axis.
    print_header(
        "Terminal economics (the entry-barrier axis)",
        &format!(
            "{:<18} {:>12} {:>10} {:>12}",
            "terminal", "cost (USD)", "mass (kg)", "volume (m3)"
        ),
    );
    let rf = rf_terminal_spec();
    let laser = laser_terminal_spec();
    println!(
        "{:<18} {:>12.0} {:>10.1} {:>12.4}",
        "RF (S/UHF)", rf.cost_usd, rf.mass_kg, rf.volume_m3
    );
    println!(
        "{:<18} {:>12.0} {:>10.1} {:>12.4}",
        "laser (ConLCT80)", laser.cost_usd, laser.mass_kg, laser.volume_m3
    );

    // Price per byte moved: the §3 "adaptive to hardware" consequence.
    print_header(
        "Amortized transit economics (5-year life, 30% utilization)",
        &format!(
            "{:<18} {:>14} {:>18}",
            "hop type", "capex (USD)", "break-even $/GiB"
        ),
    );
    let rf_hop = HopEconomics::rf_isl(5.0e6);
    let laser_hop = HopEconomics::laser_isl(10.0e9);
    println!(
        "{:<18} {:>14.0} {:>18.3}",
        "RF ISL",
        rf_hop.terminal_capex_usd,
        rf_hop.base_price_usd_per_gib()
    );
    println!(
        "{:<18} {:>14.0} {:>18.5}",
        "laser ISL",
        laser_hop.terminal_capex_usd,
        laser_hop.base_price_usd_per_gib()
    );

    // PAT setup cost of optical links (the latency price of narrow beams).
    println!(
        "\noptical link setup: slew + {:.0} s acquisition before data flows \
         (beam divergence {:.0} urad)",
        optical.acquisition_time_s,
        optical.beam_divergence_rad() * 1e6
    );
    println!(
        "shape check: optical dominates throughput and energy/bit by orders \
         of magnitude; RF dominates capex, mass, and setup latency — the \
         paper's case for RF-minimum interoperability."
    );
}
