//! Experiment-run harness: shared `--json` flag handling and
//! [`RunManifest`] assembly for the `exp_*` binaries.
//!
//! Every experiment binary constructs one [`ExpRun`] at startup. In the
//! default (human) mode the binary prints its tables exactly as before
//! and the harness stays silent. With `--json` on the command line the
//! binary suppresses its tables (guard prints with [`ExpRun::human`])
//! and [`ExpRun::finish`] emits the run's manifest — seed, config
//! digest, metric dump, phase wall-clock timings — as a single JSON
//! object on stdout, parseable by the in-tree
//! [`openspace_telemetry::json::parse`] or any JSON tool.
//!
//! The manifest's deterministic section (everything except `"wall"`) is
//! bit-identical across runs for a fixed seed; wall-clock phase timings
//! and the thread count live only in the `"wall"` block.

use openspace_sim::exec::default_threads;
use openspace_telemetry::{JsonValue, MemoryRecorder, RunManifest};
use std::time::Instant;

/// One experiment run: manifest under construction plus output-mode
/// state.
pub struct ExpRun {
    manifest: RunManifest,
    json: bool,
    phase: Option<(String, Instant)>,
}

impl ExpRun {
    /// Construct from the process arguments: `--json` anywhere on the
    /// command line selects manifest output.
    pub fn from_args(experiment: &str, seed: u64) -> Self {
        let json = std::env::args().skip(1).any(|a| a == "--json");
        Self::new(experiment, seed, json)
    }

    /// Construct with an explicit output mode (tests use this).
    pub fn new(experiment: &str, seed: u64, json: bool) -> Self {
        let mut manifest = RunManifest::new(experiment, seed);
        manifest.threads = default_threads();
        Self {
            manifest,
            json,
            phase: None,
        }
    }

    /// Whether `--json` was requested.
    pub fn json(&self) -> bool {
        self.json
    }

    /// Whether the binary should print its human tables (the default).
    pub fn human(&self) -> bool {
        !self.json
    }

    /// Digest the run's configuration description into the manifest (see
    /// [`RunManifest::digest_config`]).
    pub fn digest_config(&mut self, description: &str) {
        self.manifest.digest_config(description);
    }

    /// The run's metric recorder — pass `run.rec()` to any
    /// `*_recorded` API or record directly.
    pub fn rec(&mut self) -> &mut MemoryRecorder {
        &mut self.manifest.metrics
    }

    /// Record the worker-thread count actually used (wall section);
    /// defaults to [`default_threads`].
    pub fn set_threads(&mut self, threads: usize) {
        self.manifest.threads = threads;
    }

    /// Start a named phase, closing the previous one. Phase wall-clock
    /// durations land in the manifest's `wall.phases` list.
    pub fn phase(&mut self, name: &str) {
        self.close_phase();
        self.phase = Some((name.to_owned(), Instant::now()));
    }

    fn close_phase(&mut self) {
        if let Some((name, started)) = self.phase.take() {
            self.manifest
                .push_phase(&name, started.elapsed().as_secs_f64());
        }
    }

    /// Attach a deterministic experiment-specific block (e.g. the fault
    /// availability/MTTR table) to the manifest's `extra` section.
    pub fn push_extra(&mut self, key: &str, value: JsonValue) {
        self.manifest.push_extra(key, value);
    }

    /// Direct access to the manifest under construction.
    pub fn manifest_mut(&mut self) -> &mut RunManifest {
        &mut self.manifest
    }

    /// Close the final phase and, in `--json` mode, print the manifest
    /// to stdout. Call last in `main`.
    pub fn finish(mut self) {
        self.close_phase();
        if self.json {
            println!("{}", self.manifest.to_json());
        }
    }

    /// Like [`finish`](Self::finish) but returning the JSON string
    /// (empty in human mode) instead of printing — for tests.
    pub fn finish_to_string(mut self) -> String {
        self.close_phase();
        if self.json {
            self.manifest.to_json()
        } else {
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openspace_telemetry::json::parse;
    use openspace_telemetry::Recorder;

    #[test]
    fn human_mode_prints_no_manifest() {
        let run = ExpRun::new("exp_test", 1, false);
        assert!(run.human());
        assert_eq!(run.finish_to_string(), "");
    }

    #[test]
    fn json_mode_emits_a_parseable_manifest_with_required_keys() {
        let mut run = ExpRun::new("exp_test", 9, true);
        run.digest_config("n=2");
        run.phase("setup");
        run.rec().add("pkts", 3);
        run.phase("sweep");
        run.push_extra("note", JsonValue::Str("x".into()));
        let out = run.finish_to_string();
        let v = parse(&out).expect("manifest parses");
        for key in [
            "schema",
            "experiment",
            "seed",
            "config_digest",
            "metrics",
            "extra",
            "wall",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("experiment").and_then(JsonValue::as_str),
            Some("exp_test")
        );
        // Both phases were closed and recorded.
        let wall = v.get("wall").unwrap();
        let Some(JsonValue::Array(phases)) = wall.get("phases") else {
            panic!("wall.phases missing");
        };
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn deterministic_section_is_stable_across_runs() {
        let build = || {
            let mut run = ExpRun::new("exp_test", 5, true);
            run.digest_config("cfg");
            run.rec().add("a", 1);
            run.rec().observe("h", 2.5);
            run
        };
        let a = build().manifest_mut().deterministic_json();
        let b = build().manifest_mut().deterministic_json();
        assert_eq!(a, b);
    }
}
