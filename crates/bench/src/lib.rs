//! Shared utilities for the experiment binaries (`src/bin/exp_*`) and
//! Criterion benches.
//!
//! Every table and figure in the paper's evaluation, plus its headline
//! quantitative claims, has one regeneration binary; see DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured results.
//!
//! The [`scenario`] module is the shared setup harness those binaries
//! call into instead of repeating federation/user/route boilerplate.
//! The [`run`] module is the telemetry side of the same idea: one
//! [`ExpRun`] per binary handles the shared `--json` flag
//! and emits an [`openspace_telemetry::RunManifest`] on request.

pub mod run;
pub mod scenario;

pub use run::ExpRun;
pub use scenario::{
    access_satellite, best_station_route, ground_user, iridium_elements, nairobi_user,
    random_sat_nodes, standard_federation, study_runner, timed, walker_propagators, FIG2B_SIZES,
    FIG2C_SIZES,
};

/// Print a table header row followed by a separator sized to it.
pub fn print_header(title: &str, columns: &str) {
    println!("\n== {title} ==");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().min(100)));
}

/// Format an `Option<f64>` with the given precision, or a dash.
pub fn fmt_opt(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_opt_formats_and_dashes() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
