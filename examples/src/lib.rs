//! Example crate; see `examples/` for runnable binaries.
