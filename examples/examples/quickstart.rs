//! Quickstart: stand up an OpenSpace federation, associate a user, and
//! deliver a packet across operator boundaries.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example quickstart
//! ```

use openspace_core::prelude::*;
use openspace_net::routing::QosRequirement;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use std::collections::BTreeMap;

fn main() {
    // §4's hypothetical deployment: an Iridium-like constellation split
    // among four independent firms with a shared ground segment.
    let mut fed = iridium_federation(
        4,
        &[SatelliteClass::CubeSat, SatelliteClass::SmallSat],
        &default_station_sites(),
    );
    println!("== OpenSpace quickstart ==");
    println!(
        "federation: {} operators, {} satellites, {} ground stations",
        fed.operator_count(),
        fed.satellites().len(),
        fed.stations().len()
    );

    // A user in Nairobi subscribes to operator 1.
    let home = fed.operator_ids()[0];
    let user = fed.register_user(home).expect("member operator");
    let pos = geodetic_to_ecef(Geodetic::from_degrees(-1.286, 36.817, 1_700.0));
    println!("\nuser {} (home {}) at Nairobi", user.id, home);

    // Association: beacon scan → nearest satellite → home AAA over ISLs.
    let assoc = associate(&mut fed, &user, pos, 0.0, 1).expect("association should succeed");
    let owner = fed.satellite(assoc.serving).unwrap().owner;
    println!(
        "associated with {} (owner {}{}) — access delay {:.2} ms, \
         auth over {} ISL hops, total association {:.2} ms",
        assoc.serving,
        owner,
        if assoc.roaming { ", ROAMING" } else { "" },
        assoc.access_delay_s * 1e3,
        assoc.auth_path_hops,
        assoc.association_latency_s * 1e3,
    );

    // Deliver 1 MiB toward the Internet.
    let graph = fed.snapshot(0.0);
    let mut ledgers = BTreeMap::new();
    let delivery = deliver(
        &fed,
        &graph,
        &user,
        pos,
        0.0,
        1,
        1 << 20,
        &QosRequirement::best_effort(),
        &mut ledgers,
    )
    .expect("delivery should succeed");
    println!(
        "\ndelivered 1 MiB via {} hops, one-way latency {:.2} ms",
        delivery.path.hops(),
        delivery.latency_s * 1e3
    );
    println!(
        "carriers on path: {}",
        delivery
            .carriers
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "bottleneck capacity: {:.1} Mbit/s",
        delivery.path.bottleneck_bps(&graph).unwrap_or(0.0) / 1e6
    );
    println!(
        "accounting: {} signed records feeding {} operator ledgers",
        delivery.records.len(),
        ledgers.len()
    );

    // Predicted handover to another satellite: no re-authentication.
    let successor = fed
        .satellites()
        .iter()
        .find(|s| s.id != assoc.serving)
        .unwrap()
        .id;
    let h = execute_handover(
        &fed,
        &user,
        &assoc.certificate,
        assoc.serving,
        successor,
        pos,
        30.0,
    )
    .expect("member operator");
    println!(
        "\nhandover to {}: token {}, interruption {:.2} ms \
         (vs {:.2} ms association from scratch)",
        h.successor,
        if h.accepted { "accepted" } else { "REJECTED" },
        h.interruption_s * 1e3,
        assoc.association_latency_s * 1e3,
    );
}
