//! Federation coverage: the paper's central claim made measurable.
//!
//! §2: "Without meaningful collaboration, many smaller satellite networks
//! would simply have coverage for a patchwork of regions around the globe
//! rather than continuous global coverage on their own. Furthermore, some
//! satellites owned by a given firm may be completely disconnected from
//! the rest of their infrastructure for significant periods of time."
//!
//! This example quantifies both effects for each member of a 4-operator
//! federation, then for the federation as a whole.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example federation_coverage
//! ```

use openspace_core::prelude::*;
use openspace_net::contact::{coverage_time_fraction, longest_outage_s};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;

fn main() {
    let fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let horizon_s = 6.0 * 3600.0; // quarter day
    let step_s = 10.0;

    // Three user sites at different latitudes.
    let sites = [
        (
            "Nairobi  (-1.3N)",
            Geodetic::from_degrees(-1.3, 36.8, 1_700.0),
        ),
        ("Berlin   (52.5N)", Geodetic::from_degrees(52.5, 13.4, 50.0)),
        (
            "Longyearbyen (78N)",
            Geodetic::from_degrees(78.2, 15.6, 0.0),
        ),
    ];

    println!("== Solo vs federated service over {horizon_s:.0} s ==");
    println!(
        "{:<20} {:>12} {:>16} {:>16}",
        "site / owner", "coverage", "longest outage", ""
    );
    for (name, site) in &sites {
        let ground = geodetic_to_ecef(*site);
        println!("--- {name} ---");
        for op in fed.operator_ids() {
            let windows = fed.contact_plan_of(op, ground, 0.0, horizon_s, step_s);
            let cov = coverage_time_fraction(&windows, 0.0, horizon_s);
            let outage = longest_outage_s(&windows, 0.0, horizon_s);
            println!(
                "{:<20} {:>11.1}% {:>14.0} s",
                format!("  solo {op}"),
                cov * 100.0,
                outage
            );
        }
        let windows = fed.contact_plan(ground, 0.0, horizon_s, step_s);
        let cov = coverage_time_fraction(&windows, 0.0, horizon_s);
        let outage = longest_outage_s(&windows, 0.0, horizon_s);
        println!(
            "{:<20} {:>11.1}% {:>14.0} s   <= collaboration",
            "  FEDERATED",
            cov * 100.0,
            outage
        );
    }

    // Ground-segment disconnection: how long is each operator's satellite
    // out of sight of its OWN stations vs any federation station?
    println!("\n== Ground-segment reachability (satellite 0 of each operator) ==");
    for op in fed.operator_ids() {
        let sat = fed.satellites_of(op)[0];
        // Sample: fraction of time the satellite sees at least one ground
        // station (own vs federated).
        let mut own_visible = 0u32;
        let mut fed_visible = 0u32;
        let samples = 720;
        for k in 0..samples {
            let t = horizon_s * k as f64 / samples as f64;
            let sat_ecef = openspace_orbit::frames::eci_to_ecef(sat.propagator.position_eci(t), t);
            let mask = fed.snapshot_params.min_elevation_rad;
            let sees = |stations: &[&GroundStation]| {
                stations.iter().any(|st| {
                    openspace_orbit::visibility::is_visible(st.position_ecef, sat_ecef, 0.0)
                        && openspace_orbit::visibility::elevation_angle_rad(
                            st.position_ecef,
                            sat_ecef,
                        ) >= mask
                })
            };
            let own: Vec<&GroundStation> =
                fed.stations().iter().filter(|s| s.owner == op).collect();
            let all: Vec<&GroundStation> = fed.stations().iter().collect();
            if sees(&own) {
                own_visible += 1;
            }
            if sees(&all) {
                fed_visible += 1;
            }
        }
        println!(
            "{op}: own ground segment visible {:>5.1}% of the time, federated {:>5.1}%",
            own_visible as f64 / samples as f64 * 100.0,
            fed_visible as f64 / samples as f64 * 100.0
        );
    }
}
