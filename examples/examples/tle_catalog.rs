//! TLE catalog round trip: the public-topology workflow of §2.2.
//!
//! "The radar-tracked orbital paths of satellites are well-known and
//! readily available on public websites. This means that all firms that
//! contribute satellites to OpenSpace have a full public view of the
//! topology of the entire network."
//!
//! An operator publishes its constellation as standard TLEs; any other
//! firm ingests the catalog and reconstructs the topology — positions,
//! contact windows, routes — without ever talking to the publisher.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example tle_catalog
//! ```

use openspace_net::isl::{build_snapshot, SatNode, SnapshotParams};
use openspace_orbit::prelude::*;

fn main() {
    // The publishing operator's fleet: one Iridium plane.
    let els: Vec<OrbitalElements> = walker_star(&iridium_params())
        .unwrap()
        .into_iter()
        .take(11)
        .collect();

    println!("== Operator publishes its plane as TLEs ==");
    let mut catalog = Vec::new();
    for (i, el) in els.iter().enumerate() {
        let (l1, l2) = elements_to_tle(30_000 + i as u32, "26010A", 2026, 185.0, el);
        if i < 2 {
            println!("{l1}\n{l2}");
        }
        catalog.push((l1, l2));
    }
    println!("… {} satellites total\n", catalog.len());

    // A different firm ingests the catalog.
    println!("== Competitor ingests the catalog ==");
    let mut reconstructed = Vec::new();
    for (l1, l2) in &catalog {
        let tle = parse_tle(l1, l2).expect("published TLEs are well-formed");
        let el = tle.to_elements().expect("orbit is physical");
        reconstructed.push(SatNode {
            propagator: Propagator::new(el, PerturbationModel::SecularJ2),
            operator: 1,
            has_optical: false,
        });
    }
    println!("parsed {} TLEs", reconstructed.len());

    // Verify the reconstruction predicts the same positions.
    let originals: Vec<Propagator> = els
        .iter()
        .map(|&e| Propagator::new(e, PerturbationModel::SecularJ2))
        .collect();
    let mut worst = 0.0f64;
    for t in [0.0, 1_800.0, 3_600.0, 43_200.0] {
        for (a, b) in originals.iter().zip(&reconstructed) {
            worst = worst.max(a.position_eci(t).distance(b.propagator.position_eci(t)));
        }
    }
    println!("worst position error over 12 h of prediction: {worst:.0} m");

    // …and the same topology.
    let g = build_snapshot(0.0, &reconstructed, &[], &SnapshotParams::default());
    println!(
        "reconstructed ISL topology: {} satellites, {} directed links",
        g.satellite_count(),
        g.edge_count()
    );
    println!(
        "\nThe competitor can now precompute routes and contact plans against \
         this fleet — §2.2's \"full public view of the topology\" in practice."
    );
}
