//! Cost settlement: §3's economics running over real simulated traffic.
//!
//! Four operators carry each other's flows for a simulated hour; every
//! hop emits a signed accounting record into both the carrier's and the
//! origin's ledgers. We then cross-verify the ledgers pairwise, compute
//! net settlement positions, and apply the peering rule.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example cost_settlement
//! ```

use openspace_core::prelude::*;
use openspace_economics::prelude::*;
use openspace_net::routing::QosRequirement;
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_protocol::types::OperatorId;
use openspace_sim::rng::SimRng;
use std::collections::BTreeMap;

fn main() {
    let mut fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let ops = fed.operator_ids();

    // A user base spread over the globe, subscribed round-robin.
    let sites = [
        (-1.3, 36.8),
        (52.5, 13.4),
        (35.7, 139.7),
        (-33.9, 151.2),
        (40.7, -74.0),
        (-23.5, -46.6),
        (19.1, 72.9),
        (64.1, -21.9),
    ];
    let users: Vec<(User, _)> = sites
        .iter()
        .enumerate()
        .map(|(i, &(lat, lon))| {
            let user = fed
                .register_user(ops[i % ops.len()])
                .expect("member operator");
            (
                user,
                geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 0.0)),
            )
        })
        .collect();

    // One hour of activity: each user sends a burst every 6 minutes.
    let mut ledgers: BTreeMap<OperatorId, TrafficLedger> = BTreeMap::new();
    let mut rng = SimRng::new(11);
    let mut delivered = 0u64;
    let mut failed = 0u64;
    for slot in 0..10u64 {
        let t = slot as f64 * 360.0;
        let graph = fed.snapshot(t);
        for (i, (user, pos)) in users.iter().enumerate() {
            let bytes = 50_000_000 + rng.below(200_000_000); // 50-250 MB
            match deliver(
                &fed,
                &graph,
                user,
                *pos,
                t,
                (slot * 100 + i as u64) + 1,
                bytes,
                &QosRequirement::best_effort(),
                &mut ledgers,
            ) {
                Ok(_) => delivered += 1,
                Err(_) => failed += 1,
            }
        }
    }
    println!("== One hour of federation traffic ==");
    println!("deliveries: {delivered} ok, {failed} failed");

    // Cross-verification: every pair of ledgers must agree (§3's
    // "easily cross-verifiable account").
    println!("\n-- ledger reconciliation --");
    let mut all_clean = true;
    for (ai, &a) in ops.iter().enumerate() {
        for &b in &ops[ai + 1..] {
            let (Some(la), Some(lb)) = (ledgers.get(&a), ledgers.get(&b)) else {
                continue;
            };
            let r = reconcile(la, lb, a, b);
            all_clean &= r.is_clean();
            println!(
                "{a} <-> {b}: {} items agreed ({:.1} GiB), {} disputes",
                r.agreed,
                r.agreed_bytes as f64 / (1u64 << 30) as f64,
                r.disputes.len()
            );
        }
    }
    println!(
        "cross-verification {}",
        if all_clean { "CLEAN" } else { "DISPUTED" }
    );

    // Settlement at $4/GiB default transit with one bilateral discount.
    let mut prices = PriceBook::new(4.0);
    prices.set_rate(ops[1], ops[0], 2.5); // op2 gives op1 a deal
    let matrix = SettlementMatrix::from_ledgers(&ledgers, &prices);
    println!("\n-- net settlement positions --");
    for &op in &ops {
        println!("{op}: net {:+.2} USD", matrix.net_position(op));
    }
    println!("(sum {:.6} — money is conserved)", matrix.total_imbalance());

    // Peering evaluation on the home operator's cross-verified ledger.
    println!("\n-- peering recommendations (policy: within 25%, ≥0.5 GiB) --");
    let policy = PeeringPolicy {
        max_asymmetry: 0.25,
        min_bytes_each_way: 1 << 29,
    };
    for (ai, &a) in ops.iter().enumerate() {
        for &b in &ops[ai + 1..] {
            if let Some(ledger) = ledgers.get(&a) {
                match evaluate_peering(ledger, a, b, &policy) {
                    PeeringVerdict::RecommendPeering {
                        a_carries_for_b,
                        b_carries_for_a,
                    } => println!(
                        "{a} <-> {b}: PEER ({:.1} / {:.1} GiB symmetric)",
                        a_carries_for_b as f64 / (1u64 << 30) as f64,
                        b_carries_for_a as f64 / (1u64 << 30) as f64
                    ),
                    PeeringVerdict::KeepTransit { asymmetry } => {
                        println!("{a} <-> {b}: transit (asymmetry {:.0}%)", asymmetry * 100.0)
                    }
                    PeeringVerdict::TooSmall => {
                        println!("{a} <-> {b}: too little traffic to peer")
                    }
                }
            }
        }
    }

    // The entry-barrier comparison behind it all (§3 + §1).
    println!("\n-- entry barrier: monolithic vs federated --");
    let barrier = entry_barrier(
        SatelliteClass::SmallSat,
        66,
        ops.len(),
        &LaunchPricing::rideshare(),
    );
    println!(
        "monolithic entrant: ${:.1} M up front; federation member: ${:.1} M \
         ({}x lower barrier)",
        barrier.monolithic_usd / 1e6,
        barrier.federated_usd / 1e6,
        (barrier.monolithic_usd / barrier.federated_usd).round()
    );
}
