//! Handover trace: two hours in the life of a roaming user.
//!
//! Shows §2.2's handover machinery end to end: the contact plan, the
//! serving schedule with predicted successors, the per-handover
//! interruption with session tokens, and what the same trace would cost
//! with full re-authentication at every switch.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example handover_trace
//! ```

use openspace_core::prelude::*;
use openspace_net::handover::{service_schedule, HandoverCost};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;

fn main() {
    let mut fed = iridium_federation(4, &[SatelliteClass::SmallSat], &default_station_sites());
    let home = fed.operator_ids()[2];
    let user = fed.register_user(home).expect("member operator");
    let pos = geodetic_to_ecef(Geodetic::from_degrees(46.9, 7.45, 550.0)); // Bern

    let horizon_s = 2.0 * 3600.0;
    println!("== Two-hour handover trace (user in Bern, home {home}) ==");

    // Initial association (once!).
    let assoc = associate(&mut fed, &user, pos, 0.0, 1).expect("association");
    println!(
        "initial association: {} ({:.1} ms including home-AAA auth)\n",
        assoc.serving,
        assoc.association_latency_s * 1e3
    );

    // The precomputable serving schedule.
    let windows = fed.contact_plan(pos, 0.0, horizon_s, 5.0);
    let schedule = service_schedule(&windows, 0.0, horizon_s).expect("valid horizon");
    println!(
        "schedule: {} serving intervals, {} handovers, {:.0} s outage",
        schedule.intervals.len(),
        schedule.handovers,
        schedule.outage_s
    );
    if let Some(mtbh) = schedule.mean_time_between_handovers_s() {
        println!("mean time between handovers: {:.0} s", mtbh);
    }

    // Walk the schedule, executing a token handover at each switch. The
    // az/el columns are where the user's antenna points at acquisition.
    println!(
        "\n{:<10} {:<10} {:>8} {:>8} {:>8} {:>14}",
        "t (s)", "satellite", "owner", "az", "el", "interrupt (ms)"
    );
    let mut certificate = assoc.certificate;
    let mut total_predicted = 0.0;
    let mut total_reauth = 0.0;
    let mut prev_sat = None::<openspace_protocol::types::SatelliteId>;
    for (k, iv) in schedule.intervals.iter().enumerate().take(12) {
        let sat = fed.satellites()[iv.sat_index.index()];
        let interruption_ms = if let Some(prev) = prev_sat {
            let h = execute_handover(&fed, &user, &certificate, prev, sat.id, pos, iv.start_s)
                .expect("member operator");
            assert!(h.accepted, "token handover must be accepted");
            total_predicted += h.interruption_s;
            // What re-auth would have cost at this instant.
            let cost = HandoverCost {
                access_rtt_s: h.interruption_s,
                home_auth_rtt_s: assoc.association_latency_s,
            };
            total_reauth += cost.reauth_interruption_s();
            h.interruption_s * 1e3
        } else {
            0.0
        };
        let sat_ecef = openspace_orbit::frames::eci_to_ecef(
            sat.propagator.position_eci(iv.start_s),
            iv.start_s,
        );
        let (az, el) = openspace_orbit::visibility::look_angles_rad(pos, sat_ecef);
        println!(
            "{:<10.0} {:<10} {:>8} {:>7.0}° {:>7.0}° {:>14.2}",
            iv.start_s,
            sat.id.to_string(),
            sat.owner.to_string(),
            az.to_degrees(),
            el.to_degrees(),
            interruption_ms
        );
        prev_sat = Some(sat.id);
        // Certificates outlive the trace; re-issue only if expired.
        let now_ms = (iv.start_s * 1000.0) as u64;
        let fed_secret = *fed.federation_secret(user.home).expect("member operator");
        if !certificate.verify(&fed_secret, now_ms) {
            let renewed = associate(&mut fed, &user, pos, iv.start_s, 100 + k as u64)
                .expect("re-association");
            certificate = renewed.certificate;
            println!("  (certificate renewed)");
        }
    }

    println!(
        "\ncumulative interruption over the trace: {:.1} ms with prediction, \
         {:.1} ms with per-handover re-authentication ({:.0}x better)",
        total_predicted * 1e3,
        total_reauth * 1e3,
        total_reauth / total_predicted.max(1e-9)
    );
}
