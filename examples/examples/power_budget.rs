//! Power-constrained ISL operation: a cubesat's day in orbit.
//!
//! §2.2: "given the power cost of executing rotations for ISLs and
//! establishing those links, satellites may have power consumption
//! constraints that limit the number of ISLs they can establish and the
//! size of data transfers they can facilitate."
//!
//! We fly a 6U cubesat through a day of eclipse cycles and ISL requests,
//! and watch its power budget accept and decline pairings — the
//! responder-side `PowerConstrained` rejection of the §2.1 protocol.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example power_budget
//! ```

use openspace_orbit::prelude::*;
use openspace_phy::prelude::*;
use openspace_protocol::prelude::*;
use openspace_sim::rng::SimRng;

fn main() {
    // A 780 km near-polar cubesat with a non-dawn-dusk plane: it crosses
    // the Earth's shadow every orbit.
    let sat = Propagator::new(
        OrbitalElements::circular(780_000.0, 86.4, 20.0, 0.0).unwrap(),
        PerturbationModel::SecularJ2,
    );
    let f_ecl = eclipse_fraction(&sat, 0.0, 720);
    println!(
        "orbit: {:.1} min period, {:.0}% of it in eclipse",
        sat.elements().period_s() / 60.0,
        f_ecl * 100.0
    );

    let mut budget = PowerBudget::new(PowerSystem::cubesat_6u(), 0.25);
    let mut rng = SimRng::new(5);

    // Every 10 minutes: advance the budget through sunlight/eclipse, and
    // with some probability a neighbour requests an ISL (slew + a bulk
    // transfer worth of transmit energy).
    let step_s = 600.0;
    let day = 86_400.0;
    // A bulk-relay ISL: a slow precision slew plus a 15-minute transfer
    // at full transmit power.
    let isl_energy =
        slew_energy_j(1.5, 0.005, 10.0) + 8.0 /*W tx*/ * 900.0 /*s transfer*/;
    println!(
        "each ISL costs {:.0} J (slew + 15 min bulk transfer); battery holds {:.0} kJ\n",
        isl_energy,
        PowerSystem::cubesat_6u().battery_capacity_j / 1e3
    );

    let mut accepted = 0;
    let mut declined = 0;
    let mut min_soc = 1.0f64;
    println!(
        "{:<8} {:>10} {:>8} {:>12}",
        "t (h)", "sunlit", "SoC", "ISL verdict"
    );
    let mut t = 0.0;
    while t < day {
        let sunlit = !in_eclipse(sat.position_eci(t), t);
        // Payload baseline: 5 W of beaconing, user service, housekeeping.
        budget.advance(step_s, 5.0, sunlit);
        min_soc = min_soc.min(budget.state_of_charge_fraction());

        let mut verdict = String::from("-");
        if rng.chance(0.85) {
            // An ISL request arrives; the §2.1 responder decision.
            let request = PairRequest {
                requester: SatelliteId(99),
                target: SatelliteId(1),
                capabilities: Capabilities::rf_only(),
                laser_azimuth_rad: 0.0,
                laser_elevation_rad: 0.0,
                available_bandwidth_fraction: 0.8,
            };
            let power_ok = budget.can_afford(isl_energy);
            let decision = decide_pair(&request, Capabilities::rf_only(), 0.7, power_ok, 0.0);
            verdict = match decision {
                PairVerdict::Accept { .. } => {
                    budget.draw(isl_energy).expect("can_afford checked");
                    accepted += 1;
                    "accept".into()
                }
                PairVerdict::Reject(RejectReason::PowerConstrained) => {
                    declined += 1;
                    "reject: power".into()
                }
                other => format!("{other:?}"),
            };
        }
        if ((t / step_s) as u64).is_multiple_of(12) {
            println!(
                "{:<8.1} {:>10} {:>7.0}% {:>12}",
                t / 3600.0,
                if sunlit { "yes" } else { "ECLIPSE" },
                budget.state_of_charge_fraction() * 100.0,
                verdict
            );
        }
        t += step_s;
    }

    println!(
        "\nover the day: {accepted} ISLs accepted, {declined} declined for power; \
         state of charge never fell below {:.0}% (reserve floor 25%)",
        min_soc * 100.0
    );
    println!(
        "the §2.2 power constraint in action: the cubesat carries traffic all \
         day, but its energy budget — not its radio — caps how many ISLs it \
         can serve."
    );
}
