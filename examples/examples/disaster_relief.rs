//! Disaster relief: the paper's motivating scenario.
//!
//! §1: satellite Internet "is often the only connectivity option for
//! regions that … are prone to natural disasters that are likely to
//! damage equipment." We simulate a coastal disaster that takes the two
//! nearest ground stations offline and floods the constellation with
//! relief traffic, and compare proactive (orbit-only) routing against the
//! QoS-aware routing of §2.2.
//!
//! Run with:
//! ```sh
//! cargo run -p openspace-examples --example disaster_relief
//! ```

use openspace_core::prelude::*;
use openspace_net::routing::{latency_weight, qos_route, shortest_path, QosRequirement};
use openspace_orbit::frames::{geodetic_to_ecef, Geodetic};
use openspace_phy::hardware::SatelliteClass;
use openspace_sim::rng::SimRng;

fn main() {
    // An RF-only cubesat federation: the accessible low-entry-barrier fleet
    // of §2.1, where ISL capacity is S-band-scale and congestion bites.
    let mut fed = iridium_federation(4, &[SatelliteClass::CubeSat], &default_station_sites());
    // Disaster zone: coastal Philippines after a typhoon.
    let zone = geodetic_to_ecef(Geodetic::from_degrees(11.2, 125.0, 5.0));
    let home = fed.operator_ids()[1];
    let user = fed.register_user(home).expect("member operator");

    println!("== Disaster relief scenario: Leyte, Philippines ==");
    let assoc = associate(&mut fed, &user, zone, 0.0, 1).expect("satellites overhead");
    println!(
        "relief team associates with {} ({} ISL hops to home AAA, {:.1} ms)",
        assoc.serving,
        assoc.auth_path_hops,
        assoc.association_latency_s * 1e3
    );

    // Build the snapshot, then knock out the Singapore station (the
    // regional gateway) by treating its links as saturated, and load the
    // nearby ISLs with relief traffic.
    let mut graph = fed.snapshot(0.0);
    let mut rng = SimRng::new(7);
    let sat_idx = fed.satellite_index(assoc.serving).expect("serving exists");
    let src = graph.sat_node(sat_idx);

    // Baseline: proactive routing on the idle network.
    let mut best_idle: Option<(usize, f64)> = None;
    for gi in 0..fed.stations().len() {
        if let Some(p) = shortest_path(&graph, src, graph.station_node(gi), latency_weight) {
            if best_idle.is_none_or(|(_, c)| p.total_cost < c) {
                best_idle = Some((gi, p.total_cost));
            }
        }
    }
    let (idle_gi, idle_cost) = best_idle.expect("connected");
    println!(
        "\npre-disaster proactive route exits at {} ({:.1} ms)",
        fed.stations()[idle_gi].id,
        idle_cost * 1e3
    );

    // Disaster: the regional gateway is swamped (0.99 load on its ground
    // links) and relief traffic puts a heterogeneous surge on the ISLs.
    let hot_station = graph.station_node(idle_gi);
    let n = graph.node_count();
    for node in 0..n {
        let loads: Vec<(openspace_net::topology::NodeId, f64)> = graph
            .edges(node)
            .iter()
            .map(|e| {
                let surge = if node == hot_station || e.to == hot_station {
                    0.99
                } else {
                    0.3 + 0.62 * rng.uniform()
                };
                (e.to, surge)
            })
            .collect();
        for (to, load) in loads {
            graph
                .set_load(node, to, load)
                .expect("edges enumerated from this same graph");
        }
    }

    // Proactive routing ignores load: same path, now with queueing pain.
    let proactive = shortest_path(&graph, src, graph.station_node(idle_gi), latency_weight)
        .expect("path still exists");
    let proactive_latency = proactive
        .sum_metric(&graph, |e| {
            e.latency_s + 12_000.0 / e.capacity_bps / (1.0 - e.load_fraction)
        })
        .unwrap_or(f64::INFINITY);

    // QoS-aware routing sees the congestion and detours.
    let req = QosRequirement {
        min_bandwidth_bps: 64_000.0, // voice-grade floor for relief comms
        max_latency_s: f64::INFINITY,
    };
    let mut best_qos: Option<(usize, openspace_net::routing::Path)> = None;
    for gi in 0..fed.stations().len() {
        if let Some(p) = qos_route(&graph, src, graph.station_node(gi), &req, 12_000.0) {
            if best_qos
                .as_ref()
                .is_none_or(|(_, b)| p.total_cost < b.total_cost)
            {
                best_qos = Some((gi, p));
            }
        }
    }

    println!("\n-- after the surge --");
    println!(
        "proactive (orbit-only) route: {} hops, effective latency {:.1} ms",
        proactive.hops(),
        proactive_latency * 1e3
    );
    match best_qos {
        Some((gi, p)) => {
            println!(
                "QoS-aware route: exits at {} via {} hops, effective latency {:.1} ms",
                fed.stations()[gi].id,
                p.hops(),
                p.total_cost * 1e3
            );
            if p.total_cost < proactive_latency {
                println!(
                    "=> congestion-aware routing saves {:.1} ms per packet",
                    (proactive_latency - p.total_cost) * 1e3
                );
            }
        }
        None => println!("QoS-aware route: no path meets the 64 kbit/s floor"),
    }
}
